//! Transaction statistics.
//!
//! The paper's Table 1 reports aborts per successful range query, and §5.2
//! attributes slow-path overheads to specific conflict sources.  To regenerate
//! those numbers the STM keeps cheap, always-on counters of commits and
//! aborts, broken down by abort cause.  Counters are updated with relaxed
//! atomics; they are for reporting only and never synchronize anything.
//!
//! Deliberately *not* routed through the `crate::sync` facade: these
//! counters synchronize nothing, and some updates are conditional on
//! process-global allocator state (e.g. `record_hot_path` skips the RMW
//! when no slab block was recycled).  Instrumenting them would make the
//! model checker's schedule-point sequence depend on cross-execution slab /
//! epoch state, breaking replay-token determinism.

use std::fmt;
// FACADE-EXEMPT: reporting-only counters; see the module docs above for why
// instrumenting them would break replay-token determinism.
use std::sync::atomic::{AtomicU64, Ordering};

use crate::arena;
use crate::error::TxAbort;
use crate::snapshot;

/// Process-global durability counters.
///
/// The durability layer (WAL writer, checkpointer, recovery) lives in a
/// separate crate and its writer thread is not tied to any one `Stm`
/// instance, so — like the arena and snapshot-custody counters — the live
/// totals are process-global and each [`StmStats`] keeps only a baseline.
/// The durability crate batches its updates (one RMW per flushed batch /
/// replay pass, not one per record) to keep the log hot path off these
/// cache lines.
mod durability {
    use super::AtomicU64;

    pub(super) static WAL_RECORDS_APPENDED: AtomicU64 = AtomicU64::new(0);
    pub(super) static GROUP_COMMIT_FLUSHES: AtomicU64 = AtomicU64::new(0);
    pub(super) static RECOVERY_RECORDS_REPLAYED: AtomicU64 = AtomicU64::new(0);
    pub(super) static CHECKPOINTS_WRITTEN: AtomicU64 = AtomicU64::new(0);
}

/// Record `n` commit records appended to the write-ahead log (one call per
/// flushed batch, not per record).
pub fn note_wal_records_appended(n: u64) {
    if n > 0 {
        durability::WAL_RECORDS_APPENDED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one group-commit flush (a batch made durable by a single fsync).
pub fn note_group_commit_flush() {
    durability::GROUP_COMMIT_FLUSHES.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` WAL records replayed during recovery (one call per replay
/// pass).
pub fn note_recovery_records_replayed(n: u64) {
    if n > 0 {
        durability::RECOVERY_RECORDS_REPLAYED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one checkpoint image made durable.
pub fn note_checkpoint_written() {
    durability::CHECKPOINTS_WRITTEN.fetch_add(1, Ordering::Relaxed);
}

/// Current process-wide totals, for callers that want the raw counters
/// rather than a per-[`StmStats`] delta.
pub fn wal_records_appended_total() -> u64 {
    durability::WAL_RECORDS_APPENDED.load(Ordering::Relaxed)
}

/// See [`wal_records_appended_total`].
pub fn group_commit_flushes_total() -> u64 {
    durability::GROUP_COMMIT_FLUSHES.load(Ordering::Relaxed)
}

/// See [`wal_records_appended_total`].
pub fn recovery_records_replayed_total() -> u64 {
    durability::RECOVERY_RECORDS_REPLAYED.load(Ordering::Relaxed)
}

/// See [`wal_records_appended_total`].
pub fn checkpoints_written_total() -> u64 {
    durability::CHECKPOINTS_WRITTEN.load(Ordering::Relaxed)
}

/// Shared, concurrently updated statistics for one [`crate::Stm`] instance.
///
/// The two arena counters (`node_recycle_hits` / `chain_recycle_hits`) are
/// special: the structure arena is process-global (blocks are recycled by
/// whichever thread drives epoch collection, regardless of which `Stm` the
/// structure belonged to), so the live counters live in [`crate::arena`] and
/// this struct only keeps the *baseline* captured at construction / reset,
/// letting [`StmStats::snapshot`] report per-trial deltas like every other
/// counter.  The snapshot-custody counters (`snapshot_preserved` /
/// `snapshot_freed`) follow the same scheme: the history side table is
/// process-global, so the live totals live in [`crate::snapshot`] and only
/// the baselines are per-instance.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: AtomicU64,
    read_only_commits: AtomicU64,
    aborts_read_conflict: AtomicU64,
    aborts_write_conflict: AtomicU64,
    aborts_validation: AtomicU64,
    aborts_explicit: AtomicU64,
    validation_skipped_commits: AtomicU64,
    read_dedup_hits: AtomicU64,
    slab_recycle_hits: AtomicU64,
    node_recycle_baseline: AtomicU64,
    chain_recycle_baseline: AtomicU64,
    snapshot_preserved_baseline: AtomicU64,
    snapshot_freed_baseline: AtomicU64,
    wal_appended_baseline: AtomicU64,
    group_flush_baseline: AtomicU64,
    recovery_replayed_baseline: AtomicU64,
    checkpoints_baseline: AtomicU64,
}

impl StmStats {
    /// Create zeroed statistics.
    ///
    /// The arena baselines are captured *now*, so a fresh instance reports
    /// only recycling that happens after its construction (the process-global
    /// counters may already be far along).
    pub fn new() -> Self {
        let stats = Self::default();
        stats
            .node_recycle_baseline
            .store(arena::node_recycle_hits(), Ordering::Relaxed);
        stats
            .chain_recycle_baseline
            .store(arena::chain_recycle_hits(), Ordering::Relaxed);
        stats
            .snapshot_preserved_baseline
            .store(snapshot::preserved_total(), Ordering::Relaxed);
        stats
            .snapshot_freed_baseline
            .store(snapshot::freed_total(), Ordering::Relaxed);
        stats.rebase_durability();
        stats
    }

    /// Re-capture the durability baselines at the current global totals.
    fn rebase_durability(&self) {
        self.wal_appended_baseline
            .store(wal_records_appended_total(), Ordering::Relaxed);
        self.group_flush_baseline
            .store(group_commit_flushes_total(), Ordering::Relaxed);
        self.recovery_replayed_baseline
            .store(recovery_records_replayed_total(), Ordering::Relaxed);
        self.checkpoints_baseline
            .store(checkpoints_written_total(), Ordering::Relaxed);
    }

    pub(crate) fn record_commit(&self, read_only: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if read_only {
            self.read_only_commits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_validation_skipped(&self) {
        self.validation_skipped_commits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one attempt's locally accumulated hot-path counters in (the
    /// transaction batches these so the shared cache line is touched once
    /// per attempt, not once per read or write).
    pub(crate) fn record_hot_path(&self, dedup_hits: u32, slab_hits: u32) {
        if dedup_hits > 0 {
            self.read_dedup_hits
                .fetch_add(u64::from(dedup_hits), Ordering::Relaxed);
        }
        if slab_hits > 0 {
            self.slab_recycle_hits
                .fetch_add(u64::from(slab_hits), Ordering::Relaxed);
        }
    }

    pub(crate) fn record_abort(&self, cause: TxAbort) {
        let counter = match cause {
            TxAbort::ReadConflict => &self.aborts_read_conflict,
            TxAbort::WriteConflict => &self.aborts_write_conflict,
            TxAbort::ValidationFailed => &self.aborts_validation,
            TxAbort::Explicit => &self.aborts_explicit,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            aborts_read_conflict: self.aborts_read_conflict.load(Ordering::Relaxed),
            aborts_write_conflict: self.aborts_write_conflict.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            aborts_explicit: self.aborts_explicit.load(Ordering::Relaxed),
            validation_skipped_commits: self.validation_skipped_commits.load(Ordering::Relaxed),
            read_dedup_hits: self.read_dedup_hits.load(Ordering::Relaxed),
            slab_recycle_hits: self.slab_recycle_hits.load(Ordering::Relaxed),
            node_recycle_hits: arena::node_recycle_hits()
                .saturating_sub(self.node_recycle_baseline.load(Ordering::Relaxed)),
            chain_recycle_hits: arena::chain_recycle_hits()
                .saturating_sub(self.chain_recycle_baseline.load(Ordering::Relaxed)),
            snapshot_preserved: snapshot::preserved_total()
                .saturating_sub(self.snapshot_preserved_baseline.load(Ordering::Relaxed)),
            snapshot_freed: snapshot::freed_total()
                .saturating_sub(self.snapshot_freed_baseline.load(Ordering::Relaxed)),
            wal_records_appended: wal_records_appended_total()
                .saturating_sub(self.wal_appended_baseline.load(Ordering::Relaxed)),
            group_commit_flushes: group_commit_flushes_total()
                .saturating_sub(self.group_flush_baseline.load(Ordering::Relaxed)),
            recovery_records_replayed: recovery_records_replayed_total()
                .saturating_sub(self.recovery_replayed_baseline.load(Ordering::Relaxed)),
            checkpoints_written: checkpoints_written_total()
                .saturating_sub(self.checkpoints_baseline.load(Ordering::Relaxed)),
        }
    }

    /// Reset all counters to zero (used between benchmark trials).
    ///
    /// The process-global arena counters cannot be zeroed (other runtimes may
    /// be mid-trial); instead the current totals become this instance's new
    /// baseline, so subsequent snapshots report the delta.
    pub fn reset(&self) {
        self.commits.store(0, Ordering::Relaxed);
        self.read_only_commits.store(0, Ordering::Relaxed);
        self.aborts_read_conflict.store(0, Ordering::Relaxed);
        self.aborts_write_conflict.store(0, Ordering::Relaxed);
        self.aborts_validation.store(0, Ordering::Relaxed);
        self.aborts_explicit.store(0, Ordering::Relaxed);
        self.validation_skipped_commits.store(0, Ordering::Relaxed);
        self.read_dedup_hits.store(0, Ordering::Relaxed);
        self.slab_recycle_hits.store(0, Ordering::Relaxed);
        self.node_recycle_baseline
            .store(arena::node_recycle_hits(), Ordering::Relaxed);
        self.chain_recycle_baseline
            .store(arena::chain_recycle_hits(), Ordering::Relaxed);
        self.snapshot_preserved_baseline
            .store(snapshot::preserved_total(), Ordering::Relaxed);
        self.snapshot_freed_baseline
            .store(snapshot::freed_total(), Ordering::Relaxed);
        self.rebase_durability();
    }
}

/// A point-in-time copy of [`StmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of committed transactions.
    pub commits: u64,
    /// Number of committed transactions that performed no writes.
    pub read_only_commits: u64,
    /// Aborts caused by reading a locked or too-new location.
    pub aborts_read_conflict: u64,
    /// Aborts caused by failing to acquire an orec for writing.
    pub aborts_write_conflict: u64,
    /// Aborts caused by commit-time read-set validation.
    pub aborts_validation: u64,
    /// Aborts requested explicitly by the transaction body.
    pub aborts_explicit: u64,
    /// Writer commits that skipped read-set validation because the clock
    /// proved quiescence (see the `clock` module docs).
    pub validation_skipped_commits: u64,
    /// Reads answered by the read-set dedup filter instead of growing the
    /// read set (re-reads of already-validated cells).
    pub read_dedup_hits: u64,
    /// Transactional writes whose payload came from a recycled slab block
    /// rather than the global allocator.
    pub slab_recycle_hits: u64,
    /// Skip-hash node blocks served from recycled arena memory rather than
    /// the global allocator (process-wide, relative to this instance's
    /// construction/reset baseline — see [`StmStats`]).
    pub node_recycle_hits: u64,
    /// Hash-chain buffers served from recycled arena memory rather than the
    /// global allocator (same baseline semantics as `node_recycle_hits`).
    pub chain_recycle_hits: u64,
    /// Displaced values preserved for live snapshot pins instead of being
    /// retired (process-wide, relative to this instance's baseline — see
    /// [`StmStats`]).
    pub snapshot_preserved: u64,
    /// Preserved values freed again after the pins needing them dropped
    /// (same baseline semantics as `snapshot_preserved`).
    pub snapshot_freed: u64,
    /// Commit records appended to the write-ahead log (process-wide,
    /// relative to this instance's baseline — see [`StmStats`]).
    pub wal_records_appended: u64,
    /// Group-commit flushes — batches made durable by a single fsync (same
    /// baseline semantics as `wal_records_appended`).
    pub group_commit_flushes: u64,
    /// WAL records replayed by recovery (same baseline semantics).
    pub recovery_records_replayed: u64,
    /// Checkpoint images made durable (same baseline semantics).
    pub checkpoints_written: u64,
}

impl StatsSnapshot {
    /// Total aborts across all causes.
    pub fn total_aborts(&self) -> u64 {
        self.aborts_read_conflict
            + self.aborts_write_conflict
            + self.aborts_validation
            + self.aborts_explicit
    }

    /// Aborts per commit; `0.0` when no transaction has committed.
    pub fn abort_rate(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.commits as f64
        }
    }

    /// Pointwise difference `self - earlier`, for per-trial deltas.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            read_only_commits: self.read_only_commits - earlier.read_only_commits,
            aborts_read_conflict: self.aborts_read_conflict - earlier.aborts_read_conflict,
            aborts_write_conflict: self.aborts_write_conflict - earlier.aborts_write_conflict,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_explicit: self.aborts_explicit - earlier.aborts_explicit,
            validation_skipped_commits: self.validation_skipped_commits
                - earlier.validation_skipped_commits,
            read_dedup_hits: self.read_dedup_hits - earlier.read_dedup_hits,
            slab_recycle_hits: self.slab_recycle_hits - earlier.slab_recycle_hits,
            node_recycle_hits: self.node_recycle_hits - earlier.node_recycle_hits,
            chain_recycle_hits: self.chain_recycle_hits - earlier.chain_recycle_hits,
            snapshot_preserved: self.snapshot_preserved - earlier.snapshot_preserved,
            snapshot_freed: self.snapshot_freed - earlier.snapshot_freed,
            wal_records_appended: self.wal_records_appended - earlier.wal_records_appended,
            group_commit_flushes: self.group_commit_flushes - earlier.group_commit_flushes,
            recovery_records_replayed: self.recovery_records_replayed
                - earlier.recovery_records_replayed,
            checkpoints_written: self.checkpoints_written - earlier.checkpoints_written,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (ro={}, noval={}) aborts={} [read={} write={} validation={} explicit={}] \
             dedup={} slab={} node={} chain={} snap={}/{} wal={}+{}fl ckpt={} replay={}",
            self.commits,
            self.read_only_commits,
            self.validation_skipped_commits,
            self.total_aborts(),
            self.aborts_read_conflict,
            self.aborts_write_conflict,
            self.aborts_validation,
            self.aborts_explicit,
            self.read_dedup_hits,
            self.slab_recycle_hits,
            self.node_recycle_hits,
            self.chain_recycle_hits,
            self.snapshot_preserved,
            self.snapshot_freed,
            self.wal_records_appended,
            self.group_commit_flushes,
            self.checkpoints_written,
            self.recovery_records_replayed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_counters() {
        let stats = StmStats::new();
        stats.record_commit(true);
        stats.record_commit(false);
        stats.record_abort(TxAbort::ReadConflict);
        stats.record_abort(TxAbort::WriteConflict);
        stats.record_abort(TxAbort::WriteConflict);
        let snap = stats.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.read_only_commits, 1);
        assert_eq!(snap.aborts_read_conflict, 1);
        assert_eq!(snap.aborts_write_conflict, 2);
        assert_eq!(snap.total_aborts(), 3);
        assert!((snap.abort_rate() - 1.5).abs() < 1e-9);
    }

    /// Zero the process-global fields (arena and snapshot custody):
    /// concurrently running tests may recycle blocks or move history entries
    /// between a `reset` and the `snapshot` under assertion, and those
    /// deltas are legitimate.
    fn without_arena_counters(mut snap: StatsSnapshot) -> StatsSnapshot {
        snap.node_recycle_hits = 0;
        snap.chain_recycle_hits = 0;
        snap.snapshot_preserved = 0;
        snap.snapshot_freed = 0;
        snap.wal_records_appended = 0;
        snap.group_commit_flushes = 0;
        snap.recovery_records_replayed = 0;
        snap.checkpoints_written = 0;
        snap
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = StmStats::new();
        stats.record_commit(false);
        stats.record_abort(TxAbort::Explicit);
        stats.reset();
        assert_eq!(
            without_arena_counters(stats.snapshot()),
            StatsSnapshot::default()
        );
    }

    #[test]
    fn since_computes_deltas() {
        let stats = StmStats::new();
        stats.record_commit(false);
        let first = stats.snapshot();
        stats.record_commit(false);
        stats.record_abort(TxAbort::ValidationFailed);
        let second = stats.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.commits, 1);
        assert_eq!(delta.aborts_validation, 1);
    }

    #[test]
    fn hot_path_counters_accumulate_and_reset() {
        let stats = StmStats::new();
        stats.record_validation_skipped();
        stats.record_hot_path(3, 2);
        stats.record_hot_path(0, 0); // zero batches must not touch the lines
        let snap = stats.snapshot();
        assert_eq!(snap.validation_skipped_commits, 1);
        assert_eq!(snap.read_dedup_hits, 3);
        assert_eq!(snap.slab_recycle_hits, 2);
        let display = snap.to_string();
        assert!(display.contains("noval=1"));
        assert!(display.contains("dedup=3"));
        assert!(display.contains("slab=2"));
        stats.reset();
        assert_eq!(
            without_arena_counters(stats.snapshot()),
            StatsSnapshot::default()
        );
    }

    #[test]
    fn arena_counters_report_deltas_from_the_baseline() {
        let stats = StmStats::new();
        let before = stats.snapshot();
        arena::note_node_recycle();
        arena::note_chain_recycle();
        let after = stats.snapshot();
        assert!(after.node_recycle_hits > before.node_recycle_hits);
        assert!(after.chain_recycle_hits > before.chain_recycle_hits);
        // A freshly constructed instance baselines at the current totals and
        // reports only recycling from here on.
        let fresh = StmStats::new();
        let fresh_before = fresh.snapshot().node_recycle_hits;
        arena::note_node_recycle();
        assert!(fresh.snapshot().node_recycle_hits > fresh_before);
    }

    #[test]
    fn durability_counters_report_deltas_from_the_baseline() {
        let stats = StmStats::new();
        let before = stats.snapshot();
        note_wal_records_appended(3);
        note_wal_records_appended(0); // zero batches must not touch the line
        note_group_commit_flush();
        note_recovery_records_replayed(2);
        note_checkpoint_written();
        let delta = stats.snapshot().since(&before);
        // Other tests may note durability events concurrently, so assert a
        // floor, not equality.
        assert!(delta.wal_records_appended >= 3);
        assert!(delta.group_commit_flushes >= 1);
        assert!(delta.recovery_records_replayed >= 2);
        assert!(delta.checkpoints_written >= 1);
        let display = stats.snapshot().to_string();
        assert!(display.contains("wal="));
        assert!(display.contains("ckpt="));
        // Reset re-baselines at the current global totals.
        stats.reset();
        let fresh = stats.snapshot();
        assert_eq!(without_arena_counters(fresh), StatsSnapshot::default());
        note_checkpoint_written();
        assert!(stats.snapshot().checkpoints_written >= 1);
    }

    #[test]
    fn abort_rate_of_empty_stats_is_zero() {
        assert_eq!(StatsSnapshot::default().abort_rate(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = StmStats::new().snapshot().to_string();
        assert!(s.contains("commits=0"));
    }
}
