//! Criterion micro-benchmarks for *composed* transactions: the multi-map
//! transfer scenario and the atomic read-modify-write entries.
//!
//! These measure the cost of the capability no baseline offers — a single
//! transaction spanning two maps, and `update`/`compute` entries that fold a
//! caller's read-modify-write retry loop into one committed transaction.
//! Alongside `elemental` (sealed single ops) they put the overhead of
//! composition on the perf trajectory: a transfer should cost roughly one
//! `take` plus one `insert` plus one commit, not more.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash::SkipHash;
use skiphash_harness::transfer::TransferPair;

const UNIVERSE: u64 = 20_000;

fn prefilled_pair() -> Arc<TransferPair> {
    let pair = Arc::new(TransferPair::new(UNIVERSE));
    pair.prefill(UNIVERSE / 2);
    pair
}

fn bench_transfers(c: &mut Criterion) {
    let mut group = c.benchmark_group("composed_txn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    // Single-thread latency of one atomic cross-map transfer.
    {
        let pair = prefilled_pair();
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_function("transfer", |b| {
            b.iter(|| pair.transfer(rng.gen_range(0..UNIVERSE / 2)))
        });
    }

    // Single-thread latency of one atomic both-map audit (read-only).
    {
        let pair = prefilled_pair();
        let mut rng = SmallRng::seed_from_u64(12);
        group.bench_function("audit", |b| {
            b.iter(|| pair.audit(rng.gen_range(0..UNIVERSE)))
        });
    }

    // Contended throughput smoke: one "iteration" is a whole batch of
    // transfers spread over the worker threads, all hammering the same pair.
    const OPS_PER_THREAD: u64 = 2_000;
    let max_threads = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [2usize, 4] {
        if threads > 2 * max_threads {
            continue;
        }
        let pair = prefilled_pair();
        group.bench_function(
            BenchmarkId::new(format!("transfer_contended_{OPS_PER_THREAD}ops"), threads),
            |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let pair = Arc::clone(&pair);
                            thread::spawn(move || {
                                let mut rng = SmallRng::seed_from_u64(0xBEEF ^ t as u64);
                                for _ in 0..OPS_PER_THREAD {
                                    pair.transfer(rng.gen_range(0..UNIVERSE / 2));
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_rmw_entries(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmw_entry");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    let map: SkipHash<u64, u64> = SkipHash::<u64, u64>::builder().buckets(16_381).build();
    for key in 0..UNIVERSE / 2 {
        map.insert(key, key);
    }
    let mut rng = SmallRng::seed_from_u64(21);

    // The atomic entry...
    group.bench_function("update", |b| {
        b.iter(|| {
            let key = rng.gen_range(0..UNIVERSE / 2);
            map.update(&key, |v| v + 1)
        })
    });

    // ...versus the non-atomic two-transaction shape it replaces (which a
    // caller would additionally have to wrap in a retry loop for atomicity).
    group.bench_function("get_then_upsert", |b| {
        b.iter(|| {
            let key = rng.gen_range(0..UNIVERSE / 2);
            if let Some(v) = map.get(&key) {
                map.upsert(key, v + 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transfers, bench_rmw_entries);
criterion_main!(benches);
