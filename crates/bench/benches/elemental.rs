//! Criterion micro-benchmarks for elemental operations (single-threaded
//! latency), complementing the throughput drivers.
//!
//! These quantify the asymptotic claim behind Figures 5a–5b: skip hash
//! lookups and removals are hash-routed (`O(1)`), while the skip list and BST
//! baselines pay an `O(log n)` traversal.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash_harness::MapKind;

const POPULATION: u64 = 20_000;
const UNIVERSE: u64 = 40_000;

fn prefilled(kind: MapKind) -> std::sync::Arc<dyn skiphash_harness::BenchMap> {
    let map = kind.build(UNIVERSE);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut inserted = 0;
    while inserted < POPULATION {
        if map.insert(rng.gen_range(0..UNIVERSE), 1) {
            inserted += 1;
        }
    }
    map
}

fn bench_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for kind in [
        MapKind::SkipHashTwoPath,
        MapKind::VcasSkipList,
        MapKind::VcasBst,
        MapKind::StmSkipList,
        MapKind::StmHashMap,
    ] {
        let map = prefilled(kind);
        let mut rng = SmallRng::seed_from_u64(2);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| map.get(rng.gen_range(0..UNIVERSE)))
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for kind in [
        MapKind::SkipHashTwoPath,
        MapKind::VcasSkipList,
        MapKind::VcasBst,
        MapKind::StmHashMap,
    ] {
        let map = prefilled(kind);
        let mut rng = SmallRng::seed_from_u64(3);
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let key = rng.gen_range(0..UNIVERSE);
                if rng.gen::<bool>() {
                    map.insert(key, 1)
                } else {
                    map.remove(key)
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookups, bench_updates);
criterion_main!(benches);
