//! Criterion micro-benchmarks for range queries of varying lengths,
//! complementing the Figure 5c / Figure 6 throughput drivers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash_harness::MapKind;

const POPULATION: u64 = 20_000;
const UNIVERSE: u64 = 40_000;

fn prefilled(kind: MapKind) -> std::sync::Arc<dyn skiphash_harness::BenchMap> {
    let map = kind.build(UNIVERSE);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut inserted = 0;
    while inserted < POPULATION {
        if map.insert(rng.gen_range(0..UNIVERSE), 1) {
            inserted += 1;
        }
    }
    map
}

fn bench_ranges(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_query");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    for kind in [
        MapKind::SkipHashFastOnly,
        MapKind::SkipHashSlowOnly,
        MapKind::SkipHashTwoPath,
        MapKind::VcasSkipList,
        MapKind::BundledSkipList,
        MapKind::VcasBst,
    ] {
        for range_len in [100u64, 1_024] {
            let map = prefilled(kind);
            let mut rng = SmallRng::seed_from_u64(4);
            let mut buffer = Vec::with_capacity(range_len as usize);
            group.bench_function(BenchmarkId::new(kind.label(), range_len), |b| {
                b.iter(|| {
                    let low = rng.gen_range(0..UNIVERSE);
                    let bounds = (
                        std::ops::Bound::Included(low),
                        std::ops::Bound::Included(low + range_len),
                    );
                    map.range(bounds, &mut buffer)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ranges);
criterion_main!(benches);
