//! Criterion micro-benchmarks for raw traversal speed: level-0 scan cost
//! per element, tower-descent latency, range-collect throughput on both
//! range paths, and the vCAS/bundle baseline arms for an apples-to-apples
//! per-hop comparison.  Gated in CI via `bench_gate --prefix traversal/`
//! (see docs/BENCHMARKS.md).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash::{RangePolicy, SkipHash, SkipHashBuilder};
use skiphash_harness::MapKind;

const POPULATION: u64 = 20_000;
const UNIVERSE: u64 = 40_000;
const RANGE_LEN: u64 = 1_024;

fn prefilled_skiphash(policy: RangePolicy) -> SkipHash<u64, u64> {
    let map = SkipHashBuilder::new()
        .buckets(28_657)
        .max_level(16)
        .range_policy(policy)
        .build();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut inserted = 0;
    while inserted < POPULATION {
        if map.insert(rng.gen_range(0..UNIVERSE), 1) {
            inserted += 1;
        }
    }
    map
}

fn prefilled_kind(kind: MapKind) -> std::sync::Arc<dyn skiphash_harness::BenchMap> {
    let map = kind.build(UNIVERSE);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut inserted = 0;
    while inserted < POPULATION {
        if map.insert(rng.gen_range(0..UNIVERSE), 1) {
            inserted += 1;
        }
    }
    map
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("traversal");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    // Level-0 scan: one full materialization walks ~POPULATION nodes, so
    // the per-element cost is the reported time divided by the population.
    let map = prefilled_skiphash(RangePolicy::FastOnly);
    group.bench_function(BenchmarkId::new("level0_scan", "skiphash"), |b| {
        b.iter(|| map.to_vec().len())
    });

    // The same full scan through a pinned MVCC snapshot (read_pinned_with
    // hops instead of transactional reads).
    let snap = map.snapshot();
    group.bench_function(BenchmarkId::new("level0_scan", "snapshot"), |b| {
        b.iter(|| snap.to_vec().len())
    });
    drop(snap);

    // Descent latency: the tower walk down to a random key.
    let mut rng = SmallRng::seed_from_u64(7);
    group.bench_function(BenchmarkId::new("descent", "ceil"), |b| {
        b.iter(|| map.ceil(&rng.gen_range(0..UNIVERSE)))
    });

    // Range-collect throughput, fast path (single optimistic transaction).
    let mut rng = SmallRng::seed_from_u64(11);
    group.bench_function(BenchmarkId::new("range_collect", "fast"), |b| {
        b.iter(|| {
            let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
            map.range(low..low + RANGE_LEN).count()
        })
    });

    // Range-collect throughput, RQC custody slow path.
    let slow = prefilled_skiphash(RangePolicy::SlowOnly);
    let mut rng = SmallRng::seed_from_u64(13);
    group.bench_function(BenchmarkId::new("range_collect", "slow"), |b| {
        b.iter(|| {
            let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
            slow.range(low..low + RANGE_LEN).count()
        })
    });

    // Baseline arms: the same range workload over the versioned-link
    // baselines, so the traversal win is comparable across figure series.
    for (kind, label) in [
        (MapKind::VcasSkipList, "vcas"),
        (MapKind::BundledSkipList, "bundle"),
    ] {
        let map = prefilled_kind(kind);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buffer = Vec::with_capacity(RANGE_LEN as usize);
        group.bench_function(BenchmarkId::new("range_collect", label), |b| {
            b.iter(|| {
                let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
                let bounds = (
                    std::ops::Bound::Included(low),
                    std::ops::Bound::Excluded(low + RANGE_LEN),
                );
                map.range(bounds, &mut buffer)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
