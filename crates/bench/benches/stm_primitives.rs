//! Criterion micro-benchmarks for the STM substrate itself: read-only
//! transactions, small writer transactions, clock sources, and the
//! epoch-reclamation primitives underneath every transactional write.
//!
//! These support the paper's premise (§2.2) that a well-engineered STM makes
//! multi-word atomic operations cheap enough to build data structures on, and
//! the ablation between logical and hardware clocks discussed in §5.1.  The
//! `epoch` group exists because `pin()`/`defer_destroy` sit on the hottest
//! path in the system: the multi-threaded churn case demonstrates that the
//! epoch shim no longer serializes threads on a global lock — per-batch time
//! should stay roughly flat as the thread count grows (up to the core
//! count), where the seed's mutex-backed shim degraded linearly.  The
//! `commit_path` group is the second CI-gated group: it times the writer
//! hot path the allocation-free redesign targets (see `docs/PERF.md` and
//! docs/BENCHMARKS.md for the gate wiring).

use skiphash_stm::sync::Ordering;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crossbeam_epoch::{self as epoch, Atomic, Owned};
use skiphash_stm::{ClockKind, Stm, TCell};

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_txn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    for clock in [ClockKind::Hardware, ClockKind::Counter, ClockKind::Sampled] {
        let stm = Stm::with_clock(clock);
        let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();

        group.bench_function(BenchmarkId::new("read_only_8", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    let mut sum = 0;
                    for cell in cells.iter().take(8) {
                        sum += cell.read(tx)?;
                    }
                    Ok(sum)
                })
            })
        });

        group.bench_function(BenchmarkId::new("read_write_4", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    for cell in cells.iter().take(4) {
                        let v = cell.read(tx)?;
                        cell.write(tx, v + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

/// Epoch primitives: single-thread latency plus a multi-thread scalability
/// smoke.  One "iteration" of a churn case is a whole batch: every thread
/// performs [`CHURN_OPS_PER_THREAD`] pin + swap + `defer_destroy` cycles on
/// its own `Atomic`, so the only shared state touched is the reclamation
/// machinery itself — exactly what must not serialize.
fn bench_epoch(c: &mut Criterion) {
    const CHURN_OPS_PER_THREAD: usize = 10_000;

    let mut group = c.benchmark_group("epoch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("pin_unpin", |b| b.iter(epoch::pin));

    group.bench_function("swap_defer_destroy", |b| {
        let cell = Atomic::new(0u64);
        b.iter(|| {
            let guard = epoch::pin();
            let old = cell.swap(Owned::new(1u64), Ordering::AcqRel, &guard);
            // SAFETY: `old` became unreachable at the swap.
            unsafe { guard.defer_destroy(old) };
        });
        // SAFETY: the bencher is done; nothing else references the cell.
        unsafe {
            let guard = epoch::unprotected();
            drop(cell.load(Ordering::Relaxed, guard).into_owned());
        }
    });

    let max_threads = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for threads in [1usize, 2, 4, 8] {
        if threads > 1 && threads > 2 * max_threads {
            // Far beyond the core count the numbers measure the scheduler,
            // not the reclamation machinery.
            continue;
        }
        group.bench_function(
            BenchmarkId::new(
                format!("churn_{CHURN_OPS_PER_THREAD}ops_per_thread"),
                threads,
            ),
            |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            thread::spawn(move || {
                                let cell = Atomic::new(0u64);
                                for i in 0..CHURN_OPS_PER_THREAD as u64 {
                                    let guard = epoch::pin();
                                    let old = cell.swap(Owned::new(i), Ordering::AcqRel, &guard);
                                    // SAFETY: unreachable once swapped out.
                                    unsafe { guard.defer_destroy(old) };
                                }
                                // SAFETY: the worker is done with the cell.
                                unsafe {
                                    let guard = epoch::unprotected();
                                    drop(cell.load(Ordering::Relaxed, guard).into_owned());
                                }
                            })
                        })
                        .collect();
                    for handle in handles {
                        handle.join().unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

/// The writer-commit hot path end to end, the group the allocation-free
/// redesign is gated on in CI (alongside `epoch`): pooled scratch, the
/// unboxed write log, slab-recycled payloads, read-set dedup, and the
/// sampled clock's skip-validation fast path all sit under these timings.
///
/// * `rmw_1` — the canonical read-modify-write transaction (one read, one
///   write), per clock: the sampled clock commits without validation, the
///   hardware clock shows the price of always validating.
/// * `write_8` — a write-only transaction logging eight cells: the cost of
///   the write log and the batched epoch hand-off.
/// * `scan_rmw` — reads 64 cells *twice* (the dedup filter halves the read
///   set) and updates two of them: a skip-list-traversal-shaped commit.
/// * `skiphash_insert_remove` — the end-to-end client: one key churned
///   through a `SkipHash` insert + remove pair, the workload whose `Link`
///   towers dominate slab traffic.
fn bench_commit_path(c: &mut Criterion) {
    use skiphash::SkipHash;

    let mut group = c.benchmark_group("commit_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    for clock in [ClockKind::Sampled, ClockKind::Hardware] {
        let stm = Stm::with_clock(clock);
        let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();

        group.bench_function(BenchmarkId::new("rmw_1", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    let v = cells[0].read(tx)?;
                    cells[0].write(tx, v + 1)
                })
            })
        });

        group.bench_function(BenchmarkId::new("write_8", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    for cell in cells.iter().take(8) {
                        cell.write(tx, 1)?;
                    }
                    Ok(())
                })
            })
        });

        group.bench_function(BenchmarkId::new("scan_rmw", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    let mut sum = 0;
                    for _ in 0..2 {
                        for cell in &cells {
                            sum += cell.read(tx)?;
                        }
                    }
                    cells[0].write(tx, sum)?;
                    cells[63].write(tx, sum)
                })
            })
        });
    }

    let map: SkipHash<u64, u64> = SkipHash::new();
    for key in 0..1024u64 {
        map.insert(key, key);
    }
    group.bench_function("skiphash_insert_remove", |b| {
        b.iter(|| {
            map.insert(2048, 1);
            map.remove(&2048)
        })
    });
    group.finish();
}

/// The structure arena's own latencies, the third CI-gated group: node
/// blocks (inline tower, embedded refcount) and copy-on-write hash-chain
/// buffers cycling through the size-classed pools.
///
/// * `node_alloc_retire` — allocate a height-4 node and drop its only
///   handle: the arena pop, block initialization (header + tower cells),
///   and the epoch `defer_with` retirement enqueue.  Steady state serves
///   every block from a recycled magazine.
/// * `chain_update_cycle` — one `TxHashMap` insert + remove pair: two
///   copy-on-write chain clones plus retirement per operation, the path
///   that used to buy every buffer from the global allocator.
fn bench_arena(c: &mut Criterion) {
    use skiphash::node::Node;
    use skiphash::TxHashMap;

    let mut group = c.benchmark_group("arena");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    group.bench_function("node_alloc_retire", |b| {
        b.iter(|| criterion::black_box(Node::<u64, u64>::new(1, 1, 4, 0, 0)))
    });

    let stm = Stm::new();
    let map: TxHashMap<u64, u64> = TxHashMap::new(64);
    for key in 0..128u64 {
        stm.run(|tx| map.insert(tx, key, key).map(|_| ()));
    }
    group.bench_function("chain_update_cycle", |b| {
        b.iter(|| {
            stm.run(|tx| map.insert(tx, 4096, 1).map(|_| ()));
            stm.run(|tx| map.remove(tx, &4096).map(|_| ()))
        })
    });
    group.finish();
}

/// MVCC snapshot costs, the fourth CI-gated group (see docs/BENCHMARKS.md):
/// the pin/unpin protocol, the pinned borrowed-hop scan, and the price
/// writers pay for preservation while a snapshot is live.
///
/// * `create_drop` — `SkipHash::snapshot()` + drop: one pin-slot CAS, a
///   clock read, and the release-side custody sweep (empty here).
/// * `pinned_full_scan` / `live_full_scan` — a full scan of 1k keys through
///   a long-lived snapshot vs the transactional `to_vec`: the pinned walk
///   skips all transaction machinery but pays a history-table lookup for
///   every cell a writer displaced since the pin, so the pair brackets the
///   snapshot read path from both sides.
/// * `scans_vs_writers` — one iteration = one snapshot scan audited for the
///   transfer-conservation invariant while two writer threads commit
///   transfers continuously: the end-to-end number the harness's
///   `snapshot_scan` trial reports over longer horizons.
/// * `scans_vs_writers_bundle` — the baseline arm: the bundled skip list's
///   timestamped range scan under equivalent single-key writer churn.
fn bench_snapshot(c: &mut Criterion) {
    use skiphash::SkipHash;
    use skiphash_harness::prefill_accounts;

    let mut group = c.benchmark_group("snapshot");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    let map: SkipHash<u64, u64> = SkipHash::new();
    for key in 0..1024u64 {
        map.insert(key, key);
    }

    group.bench_function("create_drop", |b| b.iter(|| map.snapshot()));

    let snap = map.snapshot();
    // Displace some payloads so the pinned scan exercises the history path,
    // not just validated in-place reads.
    for key in (0..1024u64).step_by(4) {
        map.upsert(key, key + 1);
    }
    group.bench_function("pinned_full_scan", |b| {
        b.iter(|| criterion::black_box(snap.to_vec().len()))
    });
    group.bench_function("live_full_scan", |b| {
        b.iter(|| criterion::black_box(map.to_vec().len()))
    });
    drop(snap);

    let shared: std::sync::Arc<SkipHash<u64, u64>> = std::sync::Arc::new(SkipHash::new());
    const ACCOUNTS: u64 = 1024;
    const INITIAL: u64 = 100;
    prefill_accounts(&shared, ACCOUNTS, INITIAL);
    let stop = std::sync::Arc::new(skiphash_stm::sync::AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|t| {
            let map = std::sync::Arc::clone(&shared);
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(0xBE4C ^ t);
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    map.transact(|v| {
                        let balance = v.get(&from)?.unwrap_or(0);
                        if balance == 0 {
                            return Ok(());
                        }
                        let other = v.get(&to)?.unwrap_or(0);
                        v.upsert(from, balance - 1)?;
                        v.upsert(to, other + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    group.bench_function("scans_vs_writers", |b| {
        b.iter(|| {
            let snap = shared.snapshot();
            let pairs = snap.to_vec();
            let total: u64 = pairs.iter().map(|(_, v)| v).sum();
            assert_eq!(pairs.len() as u64, ACCOUNTS, "pinned scan lost a key");
            assert_eq!(total, ACCOUNTS * INITIAL, "pinned scan tore a transfer");
            criterion::black_box(total)
        })
    });
    stop.store(true, Ordering::Relaxed);
    for handle in writers {
        handle.join().unwrap();
    }

    // The baseline arm: the bundled skip list's timestamped range scan under
    // the same writer pressure (single-key remove + reinsert churn — the
    // strongest update the baseline can express; it has no multi-key
    // transactions to tear in the first place).
    let bundle: std::sync::Arc<skiphash_baselines::BundledSkipList<u64, u64>> = std::sync::Arc::new(
        skiphash_baselines::BundledSkipList::new(16, skiphash_baselines::TimestampMode::Rdtscp),
    );
    for key in 0..ACCOUNTS {
        bundle.insert(key, INITIAL);
    }
    let stop = std::sync::Arc::new(skiphash_stm::sync::AtomicBool::new(false));
    let writers: Vec<_> = (0..2)
        .map(|t| {
            let list = std::sync::Arc::clone(&bundle);
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(0xD15C ^ t);
                let mut version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..ACCOUNTS);
                    if list.remove(&key) {
                        list.insert(key, version);
                        version += 1;
                    }
                }
            })
        })
        .collect();
    group.bench_function("scans_vs_writers_bundle", |b| {
        b.iter(|| criterion::black_box(bundle.range(&0, &(ACCOUNTS - 1)).len()))
    });
    stop.store(true, Ordering::Relaxed);
    for handle in writers {
        handle.join().unwrap();
    }
    group.finish();
}

fn bench_uninstrumented_baseline(c: &mut Criterion) {
    // A plain (non-transactional) loop over the same data, to quantify STM
    // instrumentation overhead.
    let mut group = c.benchmark_group("stm_overhead_baseline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut cells = [0u64; 8];
    group.bench_function("plain_read_write_4", |b| {
        b.iter(|| {
            for value in cells.iter_mut().take(4) {
                *value = criterion::black_box(*value + 1);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transactions,
    bench_epoch,
    bench_commit_path,
    bench_arena,
    bench_snapshot,
    bench_uninstrumented_baseline
);
criterion_main!(benches);
