//! Criterion micro-benchmarks for the STM substrate itself: read-only
//! transactions, small writer transactions, and clock sources.
//!
//! These support the paper's premise (§2.2) that a well-engineered STM makes
//! multi-word atomic operations cheap enough to build data structures on, and
//! the ablation between logical and hardware clocks discussed in §5.1.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skiphash_stm::{ClockKind, Stm, TCell};

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_txn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    for clock in [ClockKind::Hardware, ClockKind::Counter, ClockKind::Sampled] {
        let stm = Stm::with_clock(clock);
        let cells: Vec<TCell<u64>> = (0..64).map(TCell::new).collect();

        group.bench_function(BenchmarkId::new("read_only_8", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    let mut sum = 0;
                    for cell in cells.iter().take(8) {
                        sum += cell.read(tx)?;
                    }
                    Ok(sum)
                })
            })
        });

        group.bench_function(BenchmarkId::new("read_write_4", format!("{clock}")), |b| {
            b.iter(|| {
                stm.run(|tx| {
                    for cell in cells.iter().take(4) {
                        let v = cell.read(tx)?;
                        cell.write(tx, v + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

fn bench_uninstrumented_baseline(c: &mut Criterion) {
    // A plain (non-transactional) loop over the same data, to quantify STM
    // instrumentation overhead.
    let mut group = c.benchmark_group("stm_overhead_baseline");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));
    let mut cells = [0u64; 8];
    group.bench_function("plain_read_write_4", |b| {
        b.iter(|| {
            for value in cells.iter_mut().take(4) {
                *value = criterion::black_box(*value + 1);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transactions, bench_uninstrumented_baseline);
criterion_main!(benches);
