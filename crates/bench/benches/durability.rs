//! Criterion micro-benchmarks for the durability tier.
//!
//! The gated `durability/` group runs entirely on the in-memory storage
//! backend, so it measures the software cost the tier adds to a commit —
//! record encoding, the per-thread lease buffers, the submit queue, the
//! group-commit writer, and the sync barrier — with no device noise.  That
//! makes it stable enough for the perf gate alongside `commit_path/`.
//!
//! The `durability_sync/` group hits the real filesystem and pays actual
//! fsync cost.  It is informational (NOT in the gate's prefix list): fsync
//! latency varies by orders of magnitude across machines and would make the
//! gate flaky.  Use it to size `WalConfig::flush_interval` for a device.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use skiphash_durability::{DurableMap, DurableMapBuilder, MemStorage, WalConfig};

const UNIVERSE: u64 = 8_192;

fn fast_wal() -> WalConfig {
    WalConfig {
        flush_interval: Duration::from_micros(100),
        ..WalConfig::default()
    }
}

fn mem_map(dir: &str) -> Arc<DurableMap<u64, u64>> {
    let map = DurableMapBuilder::new(dir)
        .storage(Arc::new(MemStorage::new()))
        .wal_config(fast_wal())
        .open::<u64, u64>()
        .expect("open in-memory durable map");
    for key in 0..UNIVERSE / 2 {
        map.upsert(key, key);
    }
    map.sync().expect("prefill sync");
    Arc::new(map)
}

fn bench_logged_commits(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    // Fire-and-forget logged upsert: the commit returns once the record is
    // leased into the submit queue; the writer thread drains it later.
    {
        let map = mem_map("/bench-logged");
        let mut key = 0u64;
        group.bench_function("upsert_logged", |b| {
            b.iter(|| {
                key = (key + 1) % UNIVERSE;
                map.upsert(key, key)
            })
        });
    }

    // Synchronous durable upsert: commit + wait for the group-commit
    // barrier.  On MemStorage the "fsync" is free, so the delta over
    // `upsert_logged` is pure coordination cost (queue, batch, wakeup).
    {
        let map = mem_map("/bench-durable");
        let mut key = 0u64;
        group.bench_function("upsert_durable", |b| {
            b.iter(|| {
                key = (key + 1) % UNIVERSE;
                map.upsert_durable(key, key).expect("durable ack")
            })
        });
    }

    // A composed three-op transaction produces one commit record with three
    // ops — encoding cost scales with ops, queue cost does not.
    {
        let map = mem_map("/bench-composed");
        let mut key = 0u64;
        group.bench_function("transact_logged_3ops", |b| {
            b.iter(|| {
                key = (key + 3) % UNIVERSE;
                map.transact(|view| {
                    view.upsert(key, key)?;
                    view.upsert(key + 1, key)?;
                    view.remove(&(key + 2))?;
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    // Replay cost of a pure-WAL log: 8k single-op records, no checkpoint.
    let storage = MemStorage::new();
    {
        let map = DurableMapBuilder::new("/bench-recover")
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .open::<u64, u64>()
            .expect("open map to log");
        for key in 0..UNIVERSE {
            map.upsert(key, key);
        }
        map.sync().expect("log sync");
    }
    group.bench_function("recover_8k_records", |b| {
        b.iter(|| {
            skiphash_durability::recover::<u64, u64>(
                &storage,
                std::path::Path::new("/bench-recover"),
            )
            .expect("recovery")
        })
    });
    group.finish();
}

fn bench_real_fsync(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_sync");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800));

    let dir = std::env::temp_dir().join(format!("skh-bench-sync-{}", std::process::id()));
    let map = DurableMapBuilder::new(&dir)
        .wal_config(fast_wal())
        .open::<u64, u64>()
        .expect("open on-disk durable map");
    let mut key = 0u64;
    group.bench_function("upsert_durable_fs", |b| {
        b.iter(|| {
            key = (key + 1) % UNIVERSE;
            map.upsert_durable(key, key).expect("durable ack")
        })
    });
    group.finish();
    drop(map);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_logged_commits,
    bench_recovery,
    bench_real_fsync
);
criterion_main!(benches);
