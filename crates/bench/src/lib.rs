//! Shared plumbing for the benchmark drivers (`fig5`, `fig6`, `table1`) and
//! the Criterion micro-benchmarks.
//!
//! Each binary regenerates one figure or table from the paper's evaluation
//! section; see `EXPERIMENTS.md` at the repository root for the mapping and
//! for the measured results on this machine.

#![warn(missing_docs)]

pub mod gate;
pub mod trajectory;

use std::collections::HashMap;
use std::time::Duration;

/// Command-line options shared by the benchmark drivers.
///
/// Parsing is deliberately tiny (`--key value` pairs) so the drivers stay
/// dependency-free.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    raw: HashMap<String, String>,
}

impl BenchOptions {
    /// Parse `--key value` pairs from the process arguments.
    pub fn from_args() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse `--key value` pairs from an iterator (testable entry point).
    // Deliberately NOT the std FromIterator trait: this is a constructor
    // taking raw argv strings, and call sites read better as an inherent fn.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut raw = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::from("true"),
                };
                raw.insert(key.to_string(), value);
            }
        }
        Self { raw }
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.raw.get(key).map(String::as_str)
    }

    /// Integer option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Boolean flag.
    pub fn get_flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Comma-separated list of integers with default.
    pub fn get_u64_list(&self, key: &str, default: &[u64]) -> Vec<u64> {
        match self.get(key) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .filter_map(|part| part.trim().parse().ok())
                .collect(),
        }
    }

    /// Trial duration (`--duration-ms`, default `default_ms`).
    pub fn duration(&self, default_ms: u64) -> Duration {
        Duration::from_millis(self.get_u64("duration-ms", default_ms))
    }
}

/// Default thread counts to sweep: 1, 2, 4, ... up to twice the available
/// parallelism (mirroring the paper's sweep up to 2x hardware threads, scaled
/// to this machine).
pub fn default_thread_grid() -> Vec<u64> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let mut grid = vec![1];
    let mut t = 2;
    while t <= max * 2 {
        grid.push(t);
        t *= 2;
    }
    grid.dedup();
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let opts = BenchOptions::from_iter(
            ["--universe", "5000", "--quick", "--threads", "1,2,4"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(opts.get_u64("universe", 1), 5000);
        assert!(opts.get_flag("quick"));
        assert_eq!(opts.get_u64_list("threads", &[8]), vec![1, 2, 4]);
        assert_eq!(opts.get_u64_list("missing", &[8]), vec![8]);
        assert_eq!(opts.get_u64("absent", 7), 7);
        assert_eq!(opts.duration(250), Duration::from_millis(250));
    }

    #[test]
    fn thread_grid_starts_at_one_and_is_monotonic() {
        let grid = default_thread_grid();
        assert_eq!(grid[0], 1);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
    }
}
