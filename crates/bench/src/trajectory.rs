//! The committed performance trajectory: `BENCH_trajectory.json`.
//!
//! Every figure driver prints tables for humans; none of that output is
//! diffable across pull requests.  The trajectory file fixes that: the
//! `bench_trajectory` binary measures a small, fixed set of points (quick
//! figure-5/6/transfer samples plus the `traversal/` sweep, with ids that
//! match the Criterion benchmark ids) and writes them as one JSON document
//! that gets committed at the repository root.  CI validates the committed
//! file on every run (`bench_trajectory --check`), so the perf history is
//! exactly the git history of one file.
//!
//! The format is deliberately line-oriented — one point object per line —
//! so [`validate`] can stay a matched-to-writer scanner in the style of
//! [`crate::gate`] rather than a JSON parser, and so `git diff` shows one
//! changed benchmark per changed line.

use std::fmt::Write as _;

/// Schema tag the writer stamps and the validator requires.
pub const SCHEMA: &str = "bench-trajectory-v1";

/// Id prefixes every trajectory file must cover, one per measured family.
/// `--check` fails when any family is absent: a file that silently lost its
/// `traversal/` section would un-gate the group without anyone noticing.
pub const REQUIRED_FAMILIES: &[&str] = &["fig5/", "fig6/", "transfer/", "traversal/"];

/// One measured point.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Hierarchical id (`family/detail/...`); `traversal/` ids match the
    /// Criterion benchmark ids so the committed numbers line up with the
    /// gated group.
    pub id: String,
    /// Unit of `value`: `"mops"` (throughput, higher is better) or `"ns"`
    /// (latency median, lower is better).
    pub unit: String,
    /// The measured value.
    pub value: f64,
}

impl TrajectoryPoint {
    /// A throughput point in millions of operations per second.
    pub fn mops(id: impl Into<String>, value: f64) -> Self {
        TrajectoryPoint {
            id: id.into(),
            unit: "mops".to_string(),
            value,
        }
    }

    /// A latency point in nanoseconds (median).
    pub fn ns(id: impl Into<String>, value: f64) -> Self {
        TrajectoryPoint {
            id: id.into(),
            unit: "ns".to_string(),
            value,
        }
    }
}

/// Render the trajectory document.  Ids are emitted in the order given —
/// the drivers measure in a fixed order, so re-generation on the same box
/// diffs line-by-line against the committed file.
pub fn render(points: &[TrajectoryPoint]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"points\": [\n");
    for (index, point) in points.iter().enumerate() {
        let comma = if index + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"id\":\"{}\",\"unit\":\"{}\",\"value\":{:.1}}}{comma}",
            escape(&point.id),
            point.unit,
            point.value
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars().flat_map(char::escape_default).collect()
}

/// What [`validate`] found in a well-formed trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySummary {
    /// All parsed points, in file order.
    pub points: Vec<TrajectoryPoint>,
}

/// Validate a trajectory document: schema tag present, at least one point,
/// every point line carries an id / known unit / finite value, no duplicate
/// ids, and every [`REQUIRED_FAMILIES`] prefix is covered.
///
/// The scanner is matched to [`render`] (one point object per line), same
/// as the gate's record parser — but unlike the gate it is *strict*: a
/// malformed point line is an error, not a skip, because the committed
/// file's whole job is to be trustworthy.
pub fn validate(input: &str) -> Result<TrajectorySummary, String> {
    if !input.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("missing or wrong schema tag (expected {SCHEMA:?})"));
    }
    let mut points = Vec::new();
    for (number, line) in input.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with("{\"id\":") {
            continue;
        }
        let line = line.strip_suffix(',').unwrap_or(line);
        let point = parse_point(line)
            .ok_or_else(|| format!("malformed point on line {}: {line}", number + 1))?;
        if !matches!(point.unit.as_str(), "mops" | "ns") {
            return Err(format!(
                "unknown unit {:?} on line {} (expected mops or ns)",
                point.unit,
                number + 1
            ));
        }
        if !point.value.is_finite() || point.value < 0.0 {
            return Err(format!(
                "non-finite or negative value for {} on line {}",
                point.id,
                number + 1
            ));
        }
        if points.iter().any(|p: &TrajectoryPoint| p.id == point.id) {
            return Err(format!("duplicate id {} on line {}", point.id, number + 1));
        }
        points.push(point);
    }
    if points.is_empty() {
        return Err("no points found".to_string());
    }
    for family in REQUIRED_FAMILIES {
        if !points.iter().any(|p| p.id.starts_with(family)) {
            return Err(format!("required family {family:?} has no points"));
        }
    }
    Ok(TrajectorySummary { points })
}

fn parse_point(line: &str) -> Option<TrajectoryPoint> {
    Some(TrajectoryPoint {
        id: extract_string(line, "id")?,
        unit: extract_string(line, "unit")?,
        value: extract_number(line, "value")?,
    })
}

fn extract_string(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_number(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<TrajectoryPoint> {
        vec![
            TrajectoryPoint::mops("fig5/a/skiphash/threads=1", 4.2),
            TrajectoryPoint::mops("fig6/len=1024/update", 1.5),
            TrajectoryPoint::mops("transfer/transfer-heavy/threads=2/total", 0.9),
            TrajectoryPoint::ns("traversal/range_collect/fast", 90465.4),
        ]
    }

    #[test]
    fn render_then_validate_round_trips() {
        let points = sample_points();
        let doc = render(&points);
        let summary = validate(&doc).expect("rendered document must validate");
        assert_eq!(summary.points, points);
    }

    #[test]
    fn schema_and_families_are_required() {
        let doc = render(&sample_points());
        let wrong_schema = doc.replace(SCHEMA, "bench-trajectory-v0");
        assert!(validate(&wrong_schema).unwrap_err().contains("schema"));

        let no_traversal: Vec<_> = sample_points()
            .into_iter()
            .filter(|p| !p.id.starts_with("traversal/"))
            .collect();
        assert!(validate(&render(&no_traversal))
            .unwrap_err()
            .contains("traversal/"));
    }

    #[test]
    fn malformed_points_are_errors_not_skips() {
        let doc = render(&sample_points());
        let truncated = doc.replace("\"value\":90465.4", "\"value\":oops");
        assert!(validate(&truncated).unwrap_err().contains("malformed"));

        let negative = doc.replace("\"value\":90465.4", "\"value\":-1.0");
        assert!(validate(&negative).unwrap_err().contains("negative"));

        let bad_unit = doc.replace("\"unit\":\"ns\"", "\"unit\":\"furlongs\"");
        assert!(validate(&bad_unit).unwrap_err().contains("unknown unit"));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut points = sample_points();
        points.push(points[0].clone());
        assert!(validate(&render(&points))
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn empty_documents_are_rejected() {
        assert!(
            validate("{\n  \"schema\": \"bench-trajectory-v1\",\n  \"points\": [\n  ]\n}\n")
                .unwrap_err()
                .contains("no points")
        );
    }
}
