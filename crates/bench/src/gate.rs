//! The benchmark regression gate: compare a current benchmark run against a
//! stored baseline and fail on median regressions.
//!
//! Input files are the JSON-lines artifacts the vendored criterion shim
//! writes when `CRITERION_JSON` is set: one object per line with `id`,
//! `mean_ns`, `median_ns`, and `p95_ns` fields.  The parser here is
//! deliberately matched to that writer (this workspace controls both ends);
//! it is not a general JSON parser.
//!
//! The `bench_gate` binary wraps [`compare`] for CI:
//!
//! ```text
//! bench_gate --baseline bench-baseline.json --current bench-current.json \
//!            --prefix epoch/ --max-regression 0.25
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// One benchmark's recorded statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchRecord {
    /// Mean ns/iter over the sample batches.
    pub mean_ns: f64,
    /// Median ns/iter (the gated statistic — robust to one noisy sample).
    pub median_ns: f64,
    /// 95th percentile ns/iter.
    pub p95_ns: f64,
}

/// Parse the criterion shim's JSON-lines output.  Later records for the same
/// id win (a re-run appends).  Malformed lines are skipped rather than fatal:
/// the gate must not brick CI over a truncated artifact, it reports on what
/// both files actually contain.
pub fn parse_records(input: &str) -> BTreeMap<String, BenchRecord> {
    let mut out = BTreeMap::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = match extract_string_field(line, "id") {
            Some(id) => id,
            None => continue,
        };
        let (mean, median, p95) = match (
            extract_number_field(line, "mean_ns"),
            extract_number_field(line, "median_ns"),
            extract_number_field(line, "p95_ns"),
        ) {
            (Some(mean), Some(median), Some(p95)) => (mean, median, p95),
            _ => continue,
        };
        out.insert(
            id,
            BenchRecord {
                mean_ns: mean,
                median_ns: median,
                p95_ns: p95,
            },
        );
    }
    out
}

fn extract_string_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    // The shim escapes with char::escape_default, so a bare '"' terminates.
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_number_field(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The comparison of one benchmark id across the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Benchmark id (`group/name/param`).
    pub id: String,
    /// Baseline median ns/iter.
    pub baseline_median_ns: f64,
    /// Current median ns/iter.
    pub current_median_ns: f64,
    /// Relative change of the median: `current / baseline - 1` (positive =
    /// slower).
    pub median_change: f64,
    /// True when `median_change` exceeds the configured threshold.
    pub regressed: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<55} {:>12.1} -> {:>12.1} ns  ({:+.1}%){}",
            self.id,
            self.baseline_median_ns,
            self.current_median_ns,
            self.median_change * 100.0,
            if self.regressed { "  REGRESSED" } else { "" }
        )
    }
}

/// Outcome of gating `current` against `baseline`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Per-id comparisons for every gated id present in both runs.
    pub compared: Vec<Comparison>,
    /// Gated ids present in the baseline only (renamed/removed benchmarks —
    /// reported, not fatal).
    pub missing_in_current: Vec<String>,
    /// Gated ids present in the current run only (new benchmarks).
    pub missing_in_baseline: Vec<String>,
}

impl GateReport {
    /// The comparisons that exceeded the regression threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &Comparison> {
        self.compared.iter().filter(|c| c.regressed)
    }

    /// True when no gated benchmark regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// Compare all benchmark ids starting with `prefix`, flagging any whose
/// median slowed down by more than `max_regression` (e.g. `0.25` = +25%).
///
/// Single-prefix convenience over [`compare_prefixes`].
pub fn compare(
    baseline: &BTreeMap<String, BenchRecord>,
    current: &BTreeMap<String, BenchRecord>,
    prefix: &str,
    max_regression: f64,
) -> GateReport {
    compare_prefixes(baseline, current, &[prefix], max_regression)
}

/// Compare all benchmark ids starting with *any* of `prefixes` (the CI gate
/// covers several groups — `epoch/` and `commit_path/` — in one invocation),
/// flagging any whose median slowed down by more than `max_regression`.
pub fn compare_prefixes(
    baseline: &BTreeMap<String, BenchRecord>,
    current: &BTreeMap<String, BenchRecord>,
    prefixes: &[&str],
    max_regression: f64,
) -> GateReport {
    let gated = |id: &str| prefixes.iter().any(|prefix| id.starts_with(prefix));
    let mut report = GateReport::default();
    for (id, base) in baseline.iter().filter(|(id, _)| gated(id)) {
        match current.get(id) {
            None => report.missing_in_current.push(id.clone()),
            Some(cur) => {
                let change = if base.median_ns > 0.0 {
                    cur.median_ns / base.median_ns - 1.0
                } else {
                    0.0
                };
                report.compared.push(Comparison {
                    id: id.clone(),
                    baseline_median_ns: base.median_ns,
                    current_median_ns: cur.median_ns,
                    median_change: change,
                    regressed: change > max_regression,
                });
            }
        }
    }
    for id in current.keys().filter(|id| gated(id)) {
        if !baseline.contains_key(id) {
            report.missing_in_baseline.push(id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"
{"id":"epoch/pin_unpin","mean_ns":10.0,"median_ns":10.0,"p95_ns":12.0}
{"id":"epoch/swap_defer_destroy","mean_ns":50.0,"median_ns":48.0,"p95_ns":60.0}
{"id":"stm_txn/read_only_8/hardware-tsc","mean_ns":200.0,"median_ns":190.0,"p95_ns":220.0}
"#;

    #[test]
    fn parses_shim_output() {
        let records = parse_records(BASELINE);
        assert_eq!(records.len(), 3);
        let pin = &records["epoch/pin_unpin"];
        assert_eq!(pin.mean_ns, 10.0);
        assert_eq!(pin.median_ns, 10.0);
        assert_eq!(pin.p95_ns, 12.0);
    }

    #[test]
    fn later_duplicate_records_win_and_garbage_is_skipped() {
        let input = r#"
not json at all
{"id":"epoch/pin_unpin","mean_ns":10.0,"median_ns":10.0,"p95_ns":12.0}
{"id":"epoch/pin_unpin","mean_ns":11.0,"median_ns":11.5,"p95_ns":13.0}
{"id":"broken","mean_ns":oops}
"#;
        let records = parse_records(input);
        assert_eq!(records.len(), 1);
        assert_eq!(records["epoch/pin_unpin"].median_ns, 11.5);
    }

    #[test]
    fn within_threshold_passes() {
        let baseline = parse_records(BASELINE);
        let current = parse_records(
            r#"
{"id":"epoch/pin_unpin","mean_ns":12.0,"median_ns":12.0,"p95_ns":14.0}
{"id":"epoch/swap_defer_destroy","mean_ns":40.0,"median_ns":39.0,"p95_ns":45.0}
"#,
        );
        // +20% on pin_unpin, an improvement on swap: passes a 25% gate.
        let report = compare(&baseline, &current, "epoch/", 0.25);
        assert_eq!(report.compared.len(), 2);
        assert!(report.passed());
        // The non-epoch id is outside the gated prefix entirely.
        assert!(report.compared.iter().all(|c| c.id.starts_with("epoch/")));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let baseline = parse_records(BASELINE);
        let current = parse_records(
            r#"
{"id":"epoch/pin_unpin","mean_ns":14.0,"median_ns":13.0,"p95_ns":16.0}
{"id":"epoch/swap_defer_destroy","mean_ns":50.0,"median_ns":48.0,"p95_ns":60.0}
"#,
        );
        // +30% median on pin_unpin: fails a 25% gate.
        let report = compare(&baseline, &current, "epoch/", 0.25);
        assert!(!report.passed());
        let regressions: Vec<_> = report.regressions().collect();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "epoch/pin_unpin");
        assert!(regressions[0].to_string().contains("REGRESSED"));
    }

    #[test]
    fn multiple_prefixes_gate_their_union() {
        let baseline = parse_records(
            r#"
{"id":"epoch/pin_unpin","mean_ns":10.0,"median_ns":10.0,"p95_ns":12.0}
{"id":"commit_path/rmw_1/gv5-sampled","mean_ns":100.0,"median_ns":100.0,"p95_ns":110.0}
{"id":"stm_txn/read_only_8/gv5-sampled","mean_ns":200.0,"median_ns":190.0,"p95_ns":220.0}
"#,
        );
        let current = parse_records(
            r#"
{"id":"epoch/pin_unpin","mean_ns":10.0,"median_ns":10.0,"p95_ns":12.0}
{"id":"commit_path/rmw_1/gv5-sampled","mean_ns":140.0,"median_ns":140.0,"p95_ns":150.0}
{"id":"stm_txn/read_only_8/gv5-sampled","mean_ns":900.0,"median_ns":900.0,"p95_ns":990.0}
"#,
        );
        let report = compare_prefixes(&baseline, &current, &["epoch/", "commit_path/"], 0.25);
        assert_eq!(report.compared.len(), 2, "stm_txn is outside both prefixes");
        assert!(!report.passed(), "+40% on commit_path must fail the gate");
        let regressions: Vec<_> = report.regressions().collect();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "commit_path/rmw_1/gv5-sampled");
    }

    #[test]
    fn renamed_benchmarks_are_reported_not_fatal() {
        let baseline = parse_records(BASELINE);
        let current = parse_records(
            r#"{"id":"epoch/pin_unpin_v2","mean_ns":9.0,"median_ns":9.0,"p95_ns":10.0}"#,
        );
        let report = compare(&baseline, &current, "epoch/", 0.25);
        assert!(report.passed(), "absent ids must not fail the gate");
        assert_eq!(
            report.missing_in_current,
            vec![
                "epoch/pin_unpin".to_string(),
                "epoch/swap_defer_destroy".to_string()
            ]
        );
        assert_eq!(
            report.missing_in_baseline,
            vec!["epoch/pin_unpin_v2".to_string()]
        );
    }
}
