//! CI benchmark regression gate.
//!
//! Reads two JSON-lines artifacts produced by the criterion shim (run the
//! benches with `CRITERION_JSON=<path>`), compares the medians of every
//! benchmark id under any of the comma-separated `--prefix` groups, and
//! exits non-zero when any of them slowed down by more than
//! `--max-regression`.
//!
//! ```text
//! bench_gate --baseline bench-baseline.json --current bench-current.json \
//!            --prefix epoch/,commit_path/ --max-regression 0.25
//! ```

use std::process::ExitCode;

use skiphash_bench::gate::{compare_prefixes, parse_records};
use skiphash_bench::BenchOptions;

fn main() -> ExitCode {
    let options = BenchOptions::from_args();
    let baseline_path = options.get("baseline").unwrap_or("bench-baseline.json");
    let current_path = options.get("current").unwrap_or("bench-current.json");
    let prefix = options.get("prefix").unwrap_or("epoch/,commit_path/");
    let prefixes: Vec<&str> = prefix
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    let max_regression = options
        .get("max-regression")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(contents) => Some(parse_records(&contents)),
        Err(err) => {
            eprintln!("bench_gate: cannot read {path}: {err}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::from(2);
    };
    if baseline.is_empty() {
        eprintln!("bench_gate: baseline {baseline_path} holds no records; refusing to gate");
        return ExitCode::from(2);
    }

    let report = compare_prefixes(&baseline, &current, &prefixes, max_regression);
    println!(
        "bench_gate: gating prefixes {prefixes:?} at +{:.0}% median\n",
        max_regression * 100.0
    );
    for comparison in &report.compared {
        println!("{comparison}");
    }
    for id in &report.missing_in_current {
        println!("{id:<55} present in baseline only (renamed or removed?)");
    }
    for id in &report.missing_in_baseline {
        println!("{id:<55} new benchmark (no baseline yet)");
    }
    if report.compared.is_empty() {
        println!("bench_gate: no gated ids in common; nothing to compare");
    }

    if report.passed() {
        println!("\nbench_gate: PASS");
        ExitCode::SUCCESS
    } else {
        let count = report.regressions().count();
        println!("\nbench_gate: FAIL ({count} median regression(s) beyond the threshold)");
        ExitCode::FAILURE
    }
}
