//! Regenerates Figure 5: throughput vs. thread count for workloads (a)–(f).
//!
//! For every selected workload, every evaluated map is built, pre-filled to
//! half the key universe, and then measured for the configured duration at
//! each thread count.  The output is one table per workload in the same
//! layout the paper plots (x-axis: threads; y-axis: millions of operations
//! per second; one column per map).
//!
//! Options (all `--key value`):
//!
//! * `--workload a|b|c|d|e|f|all` (default `all`)
//! * `--universe N` key universe (default 100,000; the paper uses 1,000,000)
//! * `--threads 1,2,4,...` thread counts (default: powers of two up to 2x
//!   available parallelism)
//! * `--duration-ms N` per-trial duration (default 500; the paper uses 3000)
//! * `--trials N` trials per point, averaged (default 1; the paper uses 5)
//! * `--paper` use the paper's full parameters (universe 10^6, 3 s, 5 trials)

use std::sync::Arc;
use std::time::Duration;

use skiphash_bench::{default_thread_grid, BenchOptions};
use skiphash_harness::report::{Figure, Series};
use skiphash_harness::{driver, BenchMap, MapKind, Workload};

fn measure(
    kind: MapKind,
    workload: &Workload,
    threads: usize,
    duration: Duration,
    trials: u64,
) -> f64 {
    let map: Arc<dyn BenchMap> = kind.build(workload.key_universe);
    driver::prefill(&map, workload, 0xF16_5EED);
    let mut total = 0.0;
    for trial in 0..trials {
        let result = driver::run_mixed_trial(&map, workload, threads, duration, 97 + trial);
        total += result.mops();
    }
    total / trials as f64
}

fn main() {
    let options = BenchOptions::from_args();
    let paper_mode = options.get_flag("paper");
    let universe = options.get_u64(
        "universe",
        if paper_mode {
            Workload::PAPER_UNIVERSE
        } else {
            100_000
        },
    );
    let duration = options.duration(if paper_mode { 3_000 } else { 500 });
    let trials = options.get_u64("trials", if paper_mode { 5 } else { 1 });
    let threads = options.get_u64_list("threads", &default_thread_grid());
    let which = options.get("workload").unwrap_or("all");

    let workloads: Vec<Workload> = if which == "all" {
        Workload::fig5_all(universe)
    } else {
        match Workload::fig5_by_name(which, universe) {
            Some(workload) => vec![workload],
            None => {
                eprintln!("error: unknown workload {which:?}; expected a..f or all");
                std::process::exit(2);
            }
        }
    };

    println!(
        "# Figure 5 reproduction: universe={universe}, duration={duration:?}, trials={trials}, threads={threads:?}"
    );

    for workload in &workloads {
        // Workloads with range queries only make sense for range-capable
        // maps; lookup/update-only workloads also include the STM-only maps,
        // as in the paper.
        let kinds: Vec<MapKind> = if workload.mix.range_pct > 0 {
            MapKind::range_capable().to_vec()
        } else {
            MapKind::all().to_vec()
        };
        let mut figure = Figure::new(
            format!("Figure 5{}: {}", workload.name, workload.mix),
            "threads",
            "throughput (Mops/s)",
        );
        for kind in kinds {
            let mut series = Series::new(kind.label());
            for &t in &threads {
                let mops = measure(kind, workload, t as usize, duration, trials);
                series.push(t as f64, mops);
                eprintln!(
                    "fig5{} {} threads={t}: {mops:.3} Mops/s",
                    workload.name, kind
                );
            }
            figure.add_series(series);
        }
        println!("{}", figure.to_table());
        println!("{}", figure.to_csv());
    }
}
