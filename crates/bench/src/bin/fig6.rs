//! Regenerates Figure 6: dedicated update threads and range threads, with the
//! range query length swept from 2^4 to 2^16.
//!
//! The paper runs 24 update-only threads and 24 range-only threads on one
//! socket; this driver defaults to half the available parallelism for each
//! role (minimum one each) and reports, for every range length:
//!
//! * update throughput in millions of operations per second (top chart), and
//! * range throughput in millions of key/value pairs processed per second
//!   (bottom chart).
//!
//! Options: `--universe N`, `--update-threads N`, `--range-threads N`,
//! `--min-exp N`, `--max-exp N`, `--duration-ms N`, `--trials N`, `--paper`.

use std::sync::Arc;
use std::time::Duration;

use skiphash_bench::BenchOptions;
use skiphash_harness::report::{Figure, Series};
use skiphash_harness::{driver, BenchMap, MapKind, Workload};

#[allow(clippy::too_many_arguments)]
fn measure(
    kind: MapKind,
    universe: u64,
    range_len: u64,
    update_threads: usize,
    range_threads: usize,
    duration: Duration,
    trials: u64,
) -> (f64, f64) {
    let map: Arc<dyn BenchMap> = kind.build(universe);
    let prefill_workload = Workload::custom(
        "fig6-prefill",
        skiphash_harness::WorkloadMix::new(0, 100, 0),
        universe,
        range_len,
    );
    driver::prefill(&map, &prefill_workload, 0xF16_6EED);
    let mut update_mops = 0.0;
    let mut range_pairs = 0.0;
    for trial in 0..trials {
        let result = driver::run_split_trial(
            &map,
            universe,
            range_len,
            update_threads,
            range_threads,
            duration,
            1_000 + trial,
        );
        update_mops += result.update_mops();
        range_pairs += result.range_pairs_mops();
    }
    (update_mops / trials as f64, range_pairs / trials as f64)
}

fn main() {
    let options = BenchOptions::from_args();
    let paper_mode = options.get_flag("paper");
    let universe = options.get_u64(
        "universe",
        if paper_mode {
            Workload::PAPER_UNIVERSE
        } else {
            100_000
        },
    );
    let duration = options.duration(if paper_mode { 3_000 } else { 500 });
    let trials = options.get_u64("trials", if paper_mode { 5 } else { 1 });
    let half = (std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(2)
        / 2)
    .max(1);
    let update_threads = options.get_u64("update-threads", if paper_mode { 24 } else { half });
    let range_threads = options.get_u64("range-threads", if paper_mode { 24 } else { half });
    let min_exp = options.get_u64("min-exp", 4);
    let max_exp = options.get_u64("max-exp", if paper_mode { 16 } else { 12 });

    println!(
        "# Figure 6 reproduction: universe={universe}, update_threads={update_threads}, range_threads={range_threads}, duration={duration:?}, trials={trials}"
    );

    let mut update_figure = Figure::new(
        "Figure 6 (top): update throughput vs range length",
        "range length",
        "update throughput (Mops/s)",
    );
    let mut range_figure = Figure::new(
        "Figure 6 (bottom): range throughput vs range length",
        "range length",
        "range throughput (M pairs/s)",
    );

    for kind in MapKind::range_capable() {
        let mut update_series = Series::new(kind.label());
        let mut range_series = Series::new(kind.label());
        for exp in min_exp..=max_exp {
            let range_len = 1u64 << exp;
            let (update_mops, range_pairs) = measure(
                *kind,
                universe,
                range_len,
                update_threads as usize,
                range_threads as usize,
                duration,
                trials,
            );
            update_series.push(range_len as f64, update_mops);
            range_series.push(range_len as f64, range_pairs);
            eprintln!(
                "fig6 {kind} len=2^{exp}: updates {update_mops:.3} Mops/s, ranges {range_pairs:.3} Mpairs/s"
            );
        }
        update_figure.add_series(update_series);
        range_figure.add_series(range_series);
    }

    println!("{}", update_figure.to_table());
    println!("{}", range_figure.to_table());
    println!("{}", update_figure.to_csv());
    println!("{}", range_figure.to_csv());
}
