//! Sweeps the composed-transaction *transfer* workload across thread counts,
//! putting multi-map transactions on the same scaling plots as the paper's
//! Figure 5/6 reproductions.
//!
//! Two skip hashes share one STM runtime; worker threads sample atomic
//! cross-map transfers, atomic both-map audits, and sealed lookups from the
//! selected mix (see `skiphash_harness::transfer`).  No baseline structure
//! appears because none can express the scenario — the plot shows how the
//! STM's composition tier scales, not a head-to-head.
//!
//! Output is one table/CSV pair per mix (x-axis: threads; y-axis: Mops/s;
//! one column per operation class plus the total), plus a correctness line
//! per point: audit violations (must be zero) and key conservation.
//!
//! Options (all `--key value`):
//!
//! * `--mix transfer-heavy|audit-heavy|all` (default `all`)
//! * `--universe N` key universe (default 100,000)
//! * `--threads 1,2,4,...` thread counts (default: powers of two up to 2x
//!   available parallelism)
//! * `--duration-ms N` per-trial duration (default 500)
//! * `--trials N` trials per point, averaged (default 1)
//! * `--paper` paper-scale parameters (universe 10^6, 3 s, 5 trials)

use std::sync::Arc;
use std::time::Duration;

use skiphash_bench::{default_thread_grid, BenchOptions};
use skiphash_harness::driver::run_transfer_trial;
use skiphash_harness::report::{Figure, Series};
use skiphash_harness::transfer::TransferPair;
use skiphash_harness::workload::TransferWorkload;

struct Point {
    total_mops: f64,
    transfer_mops: f64,
    audit_mops: f64,
    lookup_mops: f64,
}

fn measure(workload: &TransferWorkload, threads: usize, duration: Duration, trials: u64) -> Point {
    let mut point = Point {
        total_mops: 0.0,
        transfer_mops: 0.0,
        audit_mops: 0.0,
        lookup_mops: 0.0,
    };
    for trial in 0..trials {
        // A fresh pair per trial: transfers migrate keys between the maps, so
        // reusing one would measure a drifting population.
        let pair = Arc::new(TransferPair::new(workload.key_universe));
        pair.prefill(workload.prefill_target());
        let result = run_transfer_trial(&pair, workload, threads, duration, 0x7A_0F ^ trial);
        assert_eq!(
            result.audit_violations, 0,
            "an audit observed a key in both maps — composition is broken"
        );
        assert_eq!(
            pair.total_population(),
            workload.prefill_target() as usize,
            "transfers must conserve keys"
        );
        let secs = result.elapsed_secs.max(f64::EPSILON);
        point.total_mops += result.mops();
        point.transfer_mops += (result.transfers + result.empty_transfers) as f64 / secs / 1e6;
        point.audit_mops += result.audits as f64 / secs / 1e6;
        point.lookup_mops += result.lookups as f64 / secs / 1e6;
    }
    point.total_mops /= trials as f64;
    point.transfer_mops /= trials as f64;
    point.audit_mops /= trials as f64;
    point.lookup_mops /= trials as f64;
    point
}

fn main() {
    let options = BenchOptions::from_args();
    let paper_mode = options.get_flag("paper");
    let universe = options.get_u64("universe", if paper_mode { 1_000_000 } else { 100_000 });
    let duration = options.duration(if paper_mode { 3_000 } else { 500 });
    let trials = options.get_u64("trials", if paper_mode { 5 } else { 1 });
    let threads = options.get_u64_list("threads", &default_thread_grid());
    let which = options.get("mix").unwrap_or("all");

    let workloads: Vec<TransferWorkload> = match which {
        "all" => vec![
            TransferWorkload::transfer_heavy(universe),
            TransferWorkload::audit_heavy(universe),
        ],
        "transfer-heavy" => vec![TransferWorkload::transfer_heavy(universe)],
        "audit-heavy" => vec![TransferWorkload::audit_heavy(universe)],
        other => {
            eprintln!("error: unknown mix {other:?}; expected transfer-heavy, audit-heavy, or all");
            std::process::exit(2);
        }
    };

    println!(
        "# Transfer scenario sweep: universe={universe}, duration={duration:?}, trials={trials}, threads={threads:?}"
    );

    for workload in &workloads {
        let mut figure = Figure::new(
            format!("Transfer scenario ({}): {}", workload.name, workload.mix),
            "threads",
            "throughput (Mops/s)",
        );
        let mut total = Series::new("total");
        let mut transfers = Series::new("transfers");
        let mut audits = Series::new("audits");
        let mut lookups = Series::new("lookups");
        for &t in &threads {
            let point = measure(workload, t as usize, duration, trials);
            eprintln!(
                "transfer[{}] threads={t}: {:.3} Mops/s total ({:.3} transfer, {:.3} audit, {:.3} lookup)",
                workload.name, point.total_mops, point.transfer_mops, point.audit_mops, point.lookup_mops
            );
            total.push(t as f64, point.total_mops);
            transfers.push(t as f64, point.transfer_mops);
            audits.push(t as f64, point.audit_mops);
            lookups.push(t as f64, point.lookup_mops);
        }
        figure.add_series(total);
        figure.add_series(transfers);
        figure.add_series(audits);
        figure.add_series(lookups);
        println!("{}", figure.to_table());
        println!("{}", figure.to_csv());
    }
}
