//! Regenerates Table 1: aborts per successful range query in a
//! fast-path-only skip hash, as the range length grows.
//!
//! The paper runs the Figure 6 split workload (update-only threads plus
//! range-only threads) with the fast-path-only skip hash and reports, for
//! range lengths 2^10 through 2^14, how many fast-path attempts aborted per
//! successful range query.  At 2^14 no query completes in the paper (reported
//! as ∞); the same starvation appears here once the range is long enough that
//! concurrent updates always invalidate the single-transaction attempt.
//!
//! To keep the driver from hanging when starvation sets in, each range worker
//! gives up on a query after `--max-attempts` fast-path tries (default 200)
//! and counts it as failed; the abort ratio is still reported against
//! successful queries only, so a saturated row prints `inf` exactly like the
//! paper.
//!
//! Options: `--universe N`, `--update-threads N`, `--range-threads N`,
//! `--min-exp N`, `--max-exp N`, `--duration-ms N`, `--max-attempts N`,
//! `--paper`.

use skiphash_stm::sync::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash::{RangePolicy, SkipHash, SkipHashBuilder};
use skiphash_bench::BenchOptions;
use skiphash_harness::Workload;

struct Table1Row {
    aborts: u64,
    successes: u64,
    gave_up: u64,
}

impl Table1Row {
    fn ratio(&self) -> f64 {
        if self.successes == 0 {
            f64::INFINITY
        } else {
            self.aborts as f64 / self.successes as f64
        }
    }
}

fn build_map(universe: u64) -> Arc<SkipHash<u64, u64>> {
    let buckets = {
        let mut n = ((universe / 2) as f64 / 0.7).ceil() as usize;
        let is_prime = |n: usize| {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        };
        while !is_prime(n) {
            n += 1;
        }
        n
    };
    let mut levels = 1;
    while (1u64 << levels) < universe && levels < 30 {
        levels += 1;
    }
    Arc::new(
        SkipHashBuilder::new()
            .buckets(buckets)
            .max_level(levels.max(4))
            .range_policy(RangePolicy::FastOnly)
            .build(),
    )
}

#[allow(clippy::too_many_arguments)]
fn measure(
    universe: u64,
    range_len: u64,
    update_threads: u64,
    range_threads: u64,
    duration: Duration,
    max_attempts: u64,
) -> Table1Row {
    let map = build_map(universe);
    // Pre-fill half the universe.
    {
        let mut rng = SmallRng::seed_from_u64(0x7AB1E);
        let mut inserted = 0;
        while inserted < universe / 2 {
            let key = rng.gen_range(0..universe);
            if map.insert(key, key) {
                inserted += 1;
            }
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let aborts = Arc::new(AtomicU64::new(0));
    let successes = Arc::new(AtomicU64::new(0));
    let gave_up = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..update_threads {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xBEEF + t);
            while !stop.load(Ordering::Relaxed) {
                let key = rng.gen_range(0..universe);
                if rng.gen::<bool>() {
                    let _ = map.insert(key, key);
                } else {
                    let _ = map.remove(&key);
                }
            }
        }));
    }
    for t in 0..range_threads {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        let aborts = Arc::clone(&aborts);
        let successes = Arc::clone(&successes);
        let gave_up = Arc::clone(&gave_up);
        handles.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xCAFE + t);
            while !stop.load(Ordering::Relaxed) {
                let low = rng.gen_range(0..universe);
                let high = low + range_len;
                let mut attempts = 0;
                loop {
                    if map.range_attempt_fast(low..=high).is_some() {
                        successes.fetch_add(1, Ordering::Relaxed);
                        aborts.fetch_add(attempts, Ordering::Relaxed);
                        break;
                    }
                    attempts += 1;
                    if attempts >= max_attempts || stop.load(Ordering::Relaxed) {
                        gave_up.fetch_add(1, Ordering::Relaxed);
                        aborts.fetch_add(attempts, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }));
    }
    thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().expect("worker panicked");
    }
    Table1Row {
        aborts: aborts.load(Ordering::Relaxed),
        successes: successes.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
    }
}

fn main() {
    let options = BenchOptions::from_args();
    let paper_mode = options.get_flag("paper");
    let universe = options.get_u64(
        "universe",
        if paper_mode {
            Workload::PAPER_UNIVERSE
        } else {
            100_000
        },
    );
    let duration = options.duration(if paper_mode { 3_000 } else { 500 });
    let half = (std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(2)
        / 2)
    .max(1);
    let update_threads = options.get_u64("update-threads", if paper_mode { 24 } else { half });
    let range_threads = options.get_u64("range-threads", if paper_mode { 24 } else { half });
    let min_exp = options.get_u64("min-exp", 10);
    let max_exp = options.get_u64("max-exp", 14);
    let max_attempts = options.get_u64("max-attempts", 200);

    println!(
        "# Table 1 reproduction: universe={universe}, update_threads={update_threads}, range_threads={range_threads}, duration={duration:?}"
    );
    println!(
        "{:>14} {:>14} {:>14} {:>14} {:>18}",
        "Range Length", "Aborts", "Successes", "Gave up", "Aborts/Success"
    );
    for exp in min_exp..=max_exp {
        let range_len = 1u64 << exp;
        let row = measure(
            universe,
            range_len,
            update_threads,
            range_threads,
            duration,
            max_attempts,
        );
        let ratio = row.ratio();
        let ratio_text = if ratio.is_finite() {
            format!("{ratio:.2}")
        } else {
            "inf".to_string()
        };
        println!(
            "{:>14} {:>14} {:>14} {:>14} {:>18}",
            format!("2^{exp} ({range_len})"),
            row.aborts,
            row.successes,
            row.gave_up,
            ratio_text
        );
    }
}
