//! Measures and validates the committed perf trajectory
//! (`BENCH_trajectory.json` at the repository root).
//!
//! Two modes:
//!
//! * **Generate** (default): measure a small fixed sweep — quick
//!   figure-5/6/transfer throughput samples plus the `traversal/` latency
//!   group with ids matching the Criterion benchmarks — and write the
//!   document to `--out` (default `BENCH_trajectory.json`).  The sweep is
//!   sized for tens of seconds, not paper-grade rigor: the file tracks the
//!   *trajectory* across pull requests, the figure drivers remain the
//!   source of publishable numbers.
//! * **`--check <path>`**: validate an existing document (schema tag,
//!   well-formed points, all required families present) and exit non-zero
//!   on any defect.  CI runs this against the committed file.
//!
//! Options for generate mode: `--out PATH`, `--duration-ms N` (per mixed
//! trial, default 300), `--reps N` (per traversal point, default 15).

use std::ops::Bound;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash::{RangePolicy, SkipHash, SkipHashBuilder};
use skiphash_bench::trajectory::{render, validate, TrajectoryPoint};
use skiphash_bench::BenchOptions;
use skiphash_harness::driver::{self, run_transfer_trial};
use skiphash_harness::transfer::TransferPair;
use skiphash_harness::workload::TransferWorkload;
use skiphash_harness::{BenchMap, MapKind, Workload};

// Same shape as the Criterion traversal group, so the ids line up.
const POPULATION: u64 = 20_000;
const UNIVERSE: u64 = 40_000;
const RANGE_LEN: u64 = 1_024;

fn prefilled_skiphash(policy: RangePolicy) -> SkipHash<u64, u64> {
    let map = SkipHashBuilder::new()
        .buckets(28_657)
        .max_level(16)
        .range_policy(policy)
        .build();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut inserted = 0;
    while inserted < POPULATION {
        if map.insert(rng.gen_range(0..UNIVERSE), 1) {
            inserted += 1;
        }
    }
    map
}

/// Median wall time of `reps` runs of `op`, in nanoseconds.
fn median_ns(reps: usize, mut op: impl FnMut()) -> f64 {
    // One warm-up rep primes caches and lazy init outside the sample.
    op();
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn traversal_points(reps: usize, points: &mut Vec<TrajectoryPoint>) {
    let map = prefilled_skiphash(RangePolicy::FastOnly);
    points.push(TrajectoryPoint::ns(
        "traversal/level0_scan/skiphash",
        median_ns(reps, || {
            std::hint::black_box(map.to_vec_copied().len());
        }),
    ));

    let snap = map.snapshot();
    points.push(TrajectoryPoint::ns(
        "traversal/level0_scan/snapshot",
        median_ns(reps, || {
            std::hint::black_box(snap.to_vec().len());
        }),
    ));
    drop(snap);

    // Descent is ~1µs; batch it so the Instant overhead stays negligible.
    let mut rng = SmallRng::seed_from_u64(7);
    const DESCENT_BATCH: usize = 256;
    points.push(TrajectoryPoint::ns(
        "traversal/descent/ceil",
        median_ns(reps, || {
            for _ in 0..DESCENT_BATCH {
                std::hint::black_box(map.ceil(&rng.gen_range(0..UNIVERSE)));
            }
        }) / DESCENT_BATCH as f64,
    ));

    let mut rng = SmallRng::seed_from_u64(11);
    points.push(TrajectoryPoint::ns(
        "traversal/range_collect/fast",
        median_ns(reps, || {
            let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
            std::hint::black_box(map.range_copied(low..low + RANGE_LEN).count());
        }),
    ));

    let slow = prefilled_skiphash(RangePolicy::SlowOnly);
    let mut rng = SmallRng::seed_from_u64(13);
    points.push(TrajectoryPoint::ns(
        "traversal/range_collect/slow",
        median_ns(reps, || {
            let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
            std::hint::black_box(slow.range_copied(low..low + RANGE_LEN).count());
        }),
    ));

    for (kind, label) in [
        (MapKind::VcasSkipList, "vcas"),
        (MapKind::BundledSkipList, "bundle"),
    ] {
        let map = kind.build(UNIVERSE);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inserted = 0;
        while inserted < POPULATION {
            if map.insert(rng.gen_range(0..UNIVERSE), 1) {
                inserted += 1;
            }
        }
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buffer = Vec::with_capacity(RANGE_LEN as usize);
        points.push(TrajectoryPoint::ns(
            format!("traversal/range_collect/{label}"),
            median_ns(reps, || {
                let low = rng.gen_range(0..UNIVERSE - RANGE_LEN);
                let bounds = (Bound::Included(low), Bound::Excluded(low + RANGE_LEN));
                std::hint::black_box(map.range(bounds, &mut buffer));
            }),
        ));
    }
}

fn mixed_points(duration: Duration, points: &mut Vec<TrajectoryPoint>) {
    let universe = 100_000;
    let threads = (std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        / 2)
    .clamp(1, 4);

    // Figure-5 samples: one lookup-heavy and one mixed workload, single
    // thread and a small multi-thread point, skip hash only (the committed
    // trajectory tracks *our* map; baselines live in the figure drivers).
    for name in ["a", "d"] {
        let workload =
            Workload::fig5_by_name(name, universe).expect("fig5 workload letters are stable");
        for t in [1usize, threads] {
            let map: Arc<dyn BenchMap> = MapKind::SkipHashTwoPath.build(universe);
            driver::prefill(&map, &workload, 0xF16_5EED);
            let result = driver::run_mixed_trial(&map, &workload, t, duration, 97);
            let mops = result.mops();
            eprintln!("fig5{name} threads={t}: {mops:.3} Mops/s");
            points.push(TrajectoryPoint::mops(
                format!("fig5/{name}/skiphash/threads={t}"),
                mops,
            ));
            if t == threads && threads == 1 {
                break;
            }
        }
    }

    // Figure-6 sample: split update/range roles at the traversal range
    // length.
    let map: Arc<dyn BenchMap> = MapKind::SkipHashTwoPath.build(universe);
    let prefill = Workload::custom(
        "trajectory-fig6",
        skiphash_harness::WorkloadMix::new(0, 100, 0),
        universe,
        RANGE_LEN,
    );
    driver::prefill(&map, &prefill, 0xF16_6EED);
    let split =
        driver::run_split_trial(&map, universe, RANGE_LEN, threads, threads, duration, 1_000);
    eprintln!(
        "fig6 len={RANGE_LEN}: updates {:.3} Mops/s, ranges {:.3} Mpairs/s",
        split.update_mops(),
        split.range_pairs_mops()
    );
    points.push(TrajectoryPoint::mops(
        format!("fig6/len={RANGE_LEN}/skiphash/update"),
        split.update_mops(),
    ));
    points.push(TrajectoryPoint::mops(
        format!("fig6/len={RANGE_LEN}/skiphash/range_pairs"),
        split.range_pairs_mops(),
    ));

    // Transfer sample: the composed-transaction tier.
    let workload = TransferWorkload::transfer_heavy(universe);
    let pair = Arc::new(TransferPair::new(workload.key_universe));
    pair.prefill(workload.prefill_target());
    let result = run_transfer_trial(&pair, &workload, threads, duration, 0x7A_0F);
    assert_eq!(result.audit_violations, 0, "composition audit must hold");
    eprintln!(
        "transfer threads={threads}: {:.3} Mops/s total",
        result.mops()
    );
    points.push(TrajectoryPoint::mops(
        format!("transfer/transfer-heavy/threads={threads}/total"),
        result.mops(),
    ));
}

fn main() -> ExitCode {
    let options = BenchOptions::from_args();

    if let Some(path) = options.get("check") {
        let contents = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("bench_trajectory: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        return match validate(&contents) {
            Ok(summary) => {
                println!(
                    "bench_trajectory: {path} OK ({} points)",
                    summary.points.len()
                );
                for point in &summary.points {
                    println!("  {:<45} {:>14.1} {}", point.id, point.value, point.unit);
                }
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("bench_trajectory: {path} INVALID: {err}");
                ExitCode::FAILURE
            }
        };
    }

    let out = options.get("out").unwrap_or("BENCH_trajectory.json");
    let duration = options.duration(300);
    let reps = options.get_u64("reps", 15) as usize;

    let mut points = Vec::new();
    mixed_points(duration, &mut points);
    traversal_points(reps, &mut points);

    let doc = render(&points);
    // Validate what we are about to commit; a writer/validator mismatch
    // should fail here, not in CI.
    if let Err(err) = validate(&doc) {
        eprintln!("bench_trajectory: generated document is invalid: {err}");
        return ExitCode::FAILURE;
    }
    if let Err(err) = std::fs::write(out, &doc) {
        eprintln!("bench_trajectory: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("bench_trajectory: wrote {} points to {out}", points.len());
    ExitCode::SUCCESS
}
