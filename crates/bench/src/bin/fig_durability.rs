//! Sweeps the durable-writers workload across group-commit flush intervals,
//! plotting the durability tier's central trade-off: acknowledgment latency
//! versus logged throughput as the fsync cadence stretches.
//!
//! Writer threads upsert monotonically increasing values through a
//! [`skiphash_durability::DurableMap`]; every `--ack-every`-th operation
//! waits for the WAL sync
//! barrier and its latency is recorded (see `skiphash_harness::durability`).
//! Each x-axis point reopens a fresh map with a different
//! `WalConfig::flush_interval`, so the plot shows how batching fsyncs
//! shifts the acknowledgment quantiles.
//!
//! By default the map runs on the in-memory storage backend, which isolates
//! the group-commit machinery (batching, stamp ordering, backpressure) from
//! device speed and keeps the numbers comparable across machines.  Pass
//! `--disk DIR` to run against the real filesystem under `DIR` instead and
//! measure actual fsync cost; each point uses a fresh subdirectory.
//!
//! Output is one table/CSV pair for throughput and one for latency
//! (x-axis: flush interval in µs; series: total Mops/s, ack p50/p99/max µs),
//! plus a correctness line per point (acknowledged count, recovery check).
//!
//! Options (all `--key value`):
//!
//! * `--intervals-us 100,500,1000,...` flush intervals to sweep (default
//!   `100,300,1000,3000,10000`)
//! * `--threads N` writer threads (default 4)
//! * `--universe N` key universe (default 65,536)
//! * `--ack-every N` durable acknowledgment modulus (default 8; 1 = every
//!   commit waits for its fsync)
//! * `--duration-ms N` per-point duration (default 400)
//! * `--disk DIR` run on the real filesystem under `DIR`
//! * `--paper` paper-scale parameters (2 s per point, ack-every 4)

use std::sync::Arc;
use std::time::Duration;

use skiphash_bench::BenchOptions;
use skiphash_durability::{DurableMapBuilder, MemStorage, WalConfig};
use skiphash_harness::durability::run_durable_trial;
use skiphash_harness::report::{Figure, Series};

fn main() {
    let options = BenchOptions::from_args();
    let paper_mode = options.get_flag("paper");
    let intervals_us = options.get_u64_list("intervals-us", &[100, 300, 1_000, 3_000, 10_000]);
    let threads = options.get_u64("threads", 4) as usize;
    let universe = options.get_u64("universe", 65_536);
    let ack_every = options.get_u64("ack-every", if paper_mode { 4 } else { 8 });
    let duration = options.duration(if paper_mode { 2_000 } else { 400 });
    let disk = options.get("disk").map(str::to_owned);

    println!(
        "# Durable-writers sweep: backend={}, threads={threads}, universe={universe}, \
         ack_every={ack_every}, duration={duration:?}, intervals_us={intervals_us:?}",
        disk.as_deref().unwrap_or("mem"),
    );

    let mut throughput = Figure::new(
        "Durable writers: throughput vs flush interval",
        "flush interval (us)",
        "throughput (Mops/s)",
    );
    let mut latency = Figure::new(
        "Durable writers: ack latency vs flush interval",
        "flush interval (us)",
        "latency (us)",
    );
    let mut total = Series::new("total");
    let mut p50 = Series::new("ack p50");
    let mut p99 = Series::new("ack p99");
    let mut worst = Series::new("ack max");

    for &us in &intervals_us {
        let wal = WalConfig {
            flush_interval: Duration::from_micros(us),
            ..WalConfig::default()
        };
        let result = {
            // Fresh map per point: reusing one would replay an ever-longer
            // log into each successive open and measure recovery, not
            // commit latency.
            let (builder, dir) = match &disk {
                Some(root) => {
                    let dir = format!("{root}/fig-durability-{us}us");
                    (DurableMapBuilder::new(&dir), dir)
                }
                None => {
                    let dir = format!("/fig-durability-{us}us");
                    (
                        DurableMapBuilder::new(&dir).storage(Arc::new(MemStorage::new())),
                        dir,
                    )
                }
            };
            let map = Arc::new(
                builder
                    .wal_config(wal)
                    .open::<u64, u64>()
                    .unwrap_or_else(|e| panic!("open {dir}: {e}")),
            );
            let result = run_durable_trial(&map, universe, threads, ack_every, duration, 0xD0_0F);
            map.sync().expect("final sync");
            result
        };
        eprintln!(
            "durability interval={us}us: {:.3} Mops/s, acked={} (p50 {:.1}us, p99 {:.1}us, max {:.1}us)",
            result.mops(),
            result.acked,
            result.ack_quantile_us(0.50),
            result.ack_quantile_us(0.99),
            result.ack_max_us(),
        );
        assert!(
            result.acked > 0,
            "no acknowledged commit at interval {us}us"
        );
        total.push(us as f64, result.mops());
        p50.push(us as f64, result.ack_quantile_us(0.50));
        p99.push(us as f64, result.ack_quantile_us(0.99));
        worst.push(us as f64, result.ack_max_us());
    }

    throughput.add_series(total);
    latency.add_series(p50);
    latency.add_series(p99);
    latency.add_series(worst);
    println!("{}", throughput.to_table());
    println!("{}", throughput.to_csv());
    println!("{}", latency.to_table());
    println!("{}", latency.to_csv());
}
