//! Quickstart: the skip hash as a drop-in concurrent ordered map.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;
use std::thread;

use skiphash_repro::SkipHash;

fn main() {
    // A skip hash maps ordered keys to values and is shared across threads
    // with an Arc; every method takes &self.
    let map: Arc<SkipHash<u64, String>> = Arc::new(SkipHash::new());

    // Elemental operations: insert / get / remove.
    assert!(map.insert(10, "ten".to_string()));
    assert!(map.insert(20, "twenty".to_string()));
    assert!(
        !map.insert(10, "duplicate".to_string()),
        "inserts never overwrite"
    );
    assert_eq!(map.get(&10).as_deref(), Some("ten"));
    assert!(map.remove(&20));

    // Point queries: the closest key at or around a probe.
    map.insert(15, "fifteen".to_string());
    map.insert(30, "thirty".to_string());
    assert_eq!(map.ceil(&16), Some(30));
    assert_eq!(map.floor(&16), Some(15));
    assert_eq!(map.succ(&15), Some(30));
    assert_eq!(map.pred(&15), Some(10));

    // Concurrent writers + a linearizable range query.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let map = Arc::clone(&map);
        handles.push(thread::spawn(move || {
            for i in 0..250u64 {
                map.insert(1_000 + t * 1_000 + i, format!("worker-{t}-{i}"));
            }
        }));
    }
    for handle in handles {
        handle.join().expect("worker thread panicked");
    }

    let in_window: Vec<(u64, String)> = map.range(1_000..2_000).collect();
    println!("keys in [1000, 2000): {}", in_window.len());
    assert_eq!(in_window.len(), 250);
    assert!(
        in_window.windows(2).all(|w| w[0].0 < w[1].0),
        "sorted output"
    );

    println!("total population: {}", map.len());
    println!("quickstart finished OK");
}
