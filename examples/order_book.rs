//! Limit order book: price levels as ordered-map keys, with point queries
//! (`floor`/`ceil`) matching incoming orders against the best opposing level.
//!
//! The skip hash's `O(1)` behaviour on present keys and its `pred`/`succ`
//! point queries (enabled by the doubly linked skip list) are exactly what a
//! matching engine needs.  Run with `cargo run --example order_book`.

use std::sync::Arc;
use std::thread;

use skiphash_repro::SkipHash;

/// Resting quantity at one price level (price is the map key, in ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Level {
    quantity: u64,
}

fn main() {
    // Two books: bids (buy orders) and asks (sell orders).
    let bids: Arc<SkipHash<u64, Level>> = Arc::new(SkipHash::new());
    let asks: Arc<SkipHash<u64, Level>> = Arc::new(SkipHash::new());

    // Seed resting liquidity: bids below 10_000, asks above.
    for i in 0..500u64 {
        bids.insert(
            9_999 - i * 2,
            Level {
                quantity: 10 + i % 7,
            },
        );
        asks.insert(
            10_001 + i * 2,
            Level {
                quantity: 10 + i % 5,
            },
        );
    }

    // The spread: best bid is the largest bid key, best ask the smallest ask
    // key.
    let best_bid = bids.floor(&u64::MAX).expect("bids seeded");
    let best_ask = asks.ceil(&0).expect("asks seeded");
    println!("initial best bid {best_bid}, best ask {best_ask}");
    assert!(best_bid < best_ask);

    // Concurrent traders: each thread alternates between posting new levels
    // and cancelling ones it posted, on its own price band so the example can
    // assert exact outcomes.
    let mut handles = Vec::new();
    for trader in 0..4u64 {
        let bids = Arc::clone(&bids);
        let asks = Arc::clone(&asks);
        handles.push(thread::spawn(move || {
            let base_bid = 5_000 + trader * 500;
            let base_ask = 15_000 + trader * 500;
            let mut posted = 0u64;
            for i in 0..400u64 {
                let bid_price = base_bid + (i % 250);
                let ask_price = base_ask + (i % 250);
                if bids.insert(
                    bid_price,
                    Level {
                        quantity: 1 + i % 9,
                    },
                ) {
                    posted += 1;
                }
                if asks.insert(
                    ask_price,
                    Level {
                        quantity: 1 + i % 9,
                    },
                ) {
                    posted += 1;
                }
                if i % 3 == 0 {
                    bids.remove(&bid_price);
                    asks.remove(&ask_price);
                    posted = posted.saturating_sub(2);
                }
            }
            posted
        }));
    }
    let posted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!("net levels posted by traders: {posted}");

    // Matching sweep: market buy walks the ask book upward from the best ask
    // using `succ`, consuming levels until it has filled its size.
    let mut remaining = 200u64;
    let mut cursor = asks.ceil(&0);
    let mut filled_levels = 0;
    while remaining > 0 {
        let price = match cursor {
            Some(p) => p,
            None => break,
        };
        if let Some(level) = asks.get(&price) {
            let take = remaining.min(level.quantity);
            remaining -= take;
            if take == level.quantity {
                asks.remove(&price);
                filled_levels += 1;
            } else {
                asks.upsert(
                    price,
                    Level {
                        quantity: level.quantity - take,
                    },
                );
            }
        }
        cursor = asks.succ(&price);
    }
    println!("market buy consumed {filled_levels} ask levels");
    assert_eq!(remaining, 0, "book had enough liquidity");

    // A consistent ladder snapshot around the spread via one range query.
    let bid_top = bids.floor(&u64::MAX).unwrap();
    let ladder = bids.range(&bid_top.saturating_sub(20), &bid_top);
    println!("top-of-book bid ladder ({} levels):", ladder.len());
    for (price, level) in ladder.iter().rev().take(5) {
        println!("  {price} x {}", level.quantity);
    }
    assert!(!ladder.is_empty());
    println!("order_book example finished OK");
}
