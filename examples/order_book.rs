//! Limit order book on *composable transactions*: two skip hashes (bids and
//! asks) share one STM runtime, so a single transaction can atomically move
//! an order between the books — the cross-structure composition the paper
//! argues STM makes simple.
//!
//! The example demonstrates the two API tiers:
//!
//! * **sealed** single operations (`insert`, `floor`, `range`) for posting
//!   liquidity and snapshotting ladders;
//! * **composable** [`TxView`] transactions for the flows a matching engine
//!   actually needs: an atomic bid→ask transfer (repricing an order across
//!   the spread) and atomic read-modify-write fills (`update` / `compute`)
//!   with no caller-side retry loops.
//!
//! While a flipper thread bounces tracked orders between the books, an
//! auditor thread atomically reads *both* books in one transaction and
//! asserts every tracked order is in exactly one of them — never both, never
//! neither.  Run with `cargo run --example order_book`.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::stm::Stm;
use skiphash_repro::Compute;
use skiphash_repro::SkipHash;

/// Resting quantity at one price level (price is the map key, in ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Level {
    quantity: u64,
}

fn main() {
    // One STM runtime shared by both books: the prerequisite for touching
    // them in a single transaction.
    let stm = Arc::new(Stm::new());
    let book = |stm: &Arc<Stm>| -> Arc<SkipHash<u64, Level>> {
        Arc::new(
            SkipHashBuilder::new()
                .buckets(4_099)
                .stm(Arc::clone(stm))
                .build(),
        )
    };
    let bids = book(&stm);
    let asks = book(&stm);

    // Seed resting liquidity: bids below 10_000, asks above.
    for i in 0..500u64 {
        bids.insert(
            9_999 - i * 2,
            Level {
                quantity: 10 + i % 7,
            },
        );
        asks.insert(
            10_001 + i * 2,
            Level {
                quantity: 10 + i % 5,
            },
        );
    }
    let best_bid = bids.floor(&u64::MAX).expect("bids seeded");
    let best_ask = asks.ceil(&0).expect("asks seeded");
    println!("initial best bid {best_bid}, best ask {best_ask}");
    assert!(best_bid < best_ask);

    // Tracked orders living at odd prices so they never collide with the
    // seeded levels: each starts in the bid book and is atomically flipped
    // between the books for the rest of the run.
    let tracked: Vec<u64> = (0..64u64).map(|i| 20_001 + i * 2).collect();
    for &price in &tracked {
        assert!(bids.insert(price, Level { quantity: 5 }));
    }

    let stop = Arc::new(AtomicBool::new(false));

    // Flipper: one atomic bid→ask (or ask→bid) transfer per iteration.  The
    // take and the insert are one transaction — there is no instant at which
    // the order exists in both books or in neither.
    let flipper = {
        let stm = Arc::clone(&stm);
        let bids = Arc::clone(&bids);
        let asks = Arc::clone(&asks);
        let tracked = tracked.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let price = tracked[(flips % tracked.len() as u64) as usize];
                stm.run(|tx| {
                    if let Some(level) = bids.view(tx).take(&price)? {
                        asks.view(tx).insert(price, level)?;
                    } else if let Some(level) = asks.view(tx).take(&price)? {
                        bids.view(tx).insert(price, level)?;
                    }
                    Ok(())
                });
                flips += 1;
            }
            flips
        })
    };

    // Auditor: reads BOTH books in one transaction.  Thanks to the atomic
    // transfer it must observe every tracked order in exactly one book.
    let auditor = {
        let stm = Arc::clone(&stm);
        let bids = Arc::clone(&bids);
        let asks = Arc::clone(&asks);
        let tracked = tracked.clone();
        thread::spawn(move || {
            let mut audits = 0u64;
            for round in 0..2_000u64 {
                let price = tracked[(round % tracked.len() as u64) as usize];
                let (in_bids, in_asks) = stm.run(|tx| {
                    Ok((
                        bids.view(tx).contains_key(&price)?,
                        asks.view(tx).contains_key(&price)?,
                    ))
                });
                assert!(
                    in_bids ^ in_asks,
                    "order {price} seen in {} books mid-transfer",
                    (in_bids as u32) + (in_asks as u32)
                );
                audits += 1;
            }
            audits
        })
    };

    let audits = auditor.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let flips = flipper.join().unwrap();
    println!("atomic transfers: {flips}, audits (all exactly-one): {audits}");

    // Matching sweep, now with atomic read-modify-write: a market buy walks
    // the ask book upward consuming levels.  A partial fill decrements the
    // level with `compute` (remove-on-empty) — read and write are one
    // transaction, so concurrent fills never lose quantity.
    let mut remaining = 200u64;
    let mut cursor = asks.ceil(&0);
    let mut filled_levels = 0;
    while remaining > 0 {
        let price = match cursor {
            Some(p) => p,
            None => break,
        };
        // `compute`'s closure may run once per internal retry, so it reports
        // its decision through a Cell instead of a captured `&mut`.
        let took = std::cell::Cell::new(0u64);
        let after = asks.compute(price, |level| {
            took.set(0); // reset per attempt: a retry may find the level gone
            match level {
                None => Compute::Keep, // another matcher consumed it first
                Some(level) => {
                    let take = remaining.min(level.quantity);
                    took.set(take);
                    if take == level.quantity {
                        Compute::Remove
                    } else {
                        Compute::Put(Level {
                            quantity: level.quantity - take,
                        })
                    }
                }
            }
        });
        let took = took.get();
        if took > 0 {
            remaining -= took;
            // `compute` returns the value left behind: None means this fill
            // emptied the level — atomic with the fill itself, no re-read.
            if after.is_none() {
                filled_levels += 1;
            }
        }
        cursor = asks.succ(&price);
    }
    println!("market buy consumed {filled_levels} ask levels");
    assert_eq!(remaining, 0, "book had enough liquidity");

    // Atomic quantity bump on the best bid via `update` (no retry loop).
    let top = bids.floor(&u64::MAX).unwrap();
    let bumped = bids.update(&top, |level| Level {
        quantity: level.quantity + 1,
    });
    assert!(bumped.is_some());

    // A consistent ladder snapshot around the spread via one std-style range
    // query (any RangeBounds works: `a..=b`, `a..`, `..`).
    let ladder: Vec<(u64, Level)> = bids.range(top.saturating_sub(20)..=top).collect();
    println!("top-of-book bid ladder ({} levels):", ladder.len());
    for (price, level) in ladder.iter().rev().take(5) {
        println!("  {price} x {}", level.quantity);
    }
    assert!(!ladder.is_empty());

    bids.check_invariants().expect("bid book invariants");
    asks.check_invariants().expect("ask book invariants");
    println!("order_book example finished OK");
}
