//! Time-series index: sensor readings keyed by timestamp, with concurrent
//! ingestion, retention-based deletion, and windowed range scans.
//!
//! This is the kind of workload the paper's introduction motivates: many
//! threads insert and expire entries while analytical queries need a
//! consistent view of a contiguous key window.  Run with
//! `cargo run --example time_series`.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::RangePolicy;

/// One sensor sample; the value type just needs to be `Clone + Send + Sync`.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    sensor: u32,
    reading: f64,
}

fn main() {
    let index = Arc::new(
        SkipHashBuilder::new()
            .buckets(16_384)
            .range_policy(RangePolicy::TwoPath { tries: 3 })
            .build::<u64, Sample>(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    // Ingestion: four sensors appending samples at increasing timestamps.
    let mut writers = Vec::new();
    for sensor in 0..4u32 {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut timestamp = sensor as u64;
            let mut written = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let sample = Sample {
                    sensor,
                    reading: (timestamp as f64).sin(),
                };
                if index.insert(timestamp, sample) {
                    written += 1;
                }
                timestamp += 4; // interleave the four sensors' timestamps
            }
            written
        }));
    }

    // Retention: expire everything older than a sliding horizon.
    let retention = {
        let index = Arc::clone(&index);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut expired = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Some(newest) = index.floor(&u64::MAX) {
                    let horizon = newest.saturating_sub(5_000);
                    // Expire a small batch of the oldest entries.
                    for (timestamp, _) in index.range(..=horizon).take(256) {
                        if index.remove(&timestamp) {
                            expired += 1;
                        }
                    }
                }
                thread::yield_now();
            }
            expired
        })
    };

    // Analytics: windowed scans over the most recent 1,000 timestamps.  Every
    // window is a linearizable snapshot: timestamps are strictly increasing
    // and each belongs to the sensor that owns that residue class.
    let mut windows_scanned = 0u64;
    for _ in 0..200 {
        if let Some(newest) = index.floor(&u64::MAX) {
            let low = newest.saturating_sub(1_000);
            let window: Vec<(u64, Sample)> = index.range(low..=newest).collect();
            for pair in window.windows(2) {
                assert!(pair[0].0 < pair[1].0, "range output must be sorted");
            }
            for (timestamp, sample) in &window {
                assert_eq!(
                    (*timestamp % 4) as u32,
                    sample.sensor,
                    "sample stored under the wrong sensor's timestamp"
                );
            }
            windows_scanned += 1;
        }
        thread::sleep(Duration::from_millis(1));
    }

    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let expired = retention.join().unwrap();

    println!("ingested samples : {written}");
    println!("expired samples  : {expired}");
    println!("windows scanned  : {windows_scanned}");
    println!("live population  : {}", index.len());
    println!("time_series example finished OK");
}
