//! Range analytics under contention: demonstrates why the two-path range
//! query matters.
//!
//! Writers hammer a narrow, hot key band while an analytics thread repeatedly
//! scans a long window that covers the hot band.  With the paper's two-path
//! policy the scans stay linearizable and keep finishing (long scans fall
//! back to the slow path); the example also runs the same scan through the
//! explicit fast-path-only API to show how often a single-transaction scan
//! aborts under this contention — the effect Table 1 quantifies.
//!
//! The final phase contrasts the third scan flavour: an **MVCC snapshot**.
//! While the writers keep churning, one `map.snapshot()` is scanned over and
//! over — every scan returns byte-identical results at the pinned version,
//! with no retries and no coordination, which neither the fast path (aborts)
//! nor the slow path (coordinates per query) can offer a *repeated* reader.
//!
//! Run with `cargo run --example range_analytics`.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::RangePolicy;
use skiphash_repro::SkipHash;

const UNIVERSE: u64 = 50_000;
const HOT_BAND: std::ops::Range<u64> = 20_000..21_000;

fn spawn_writers(
    map: &Arc<SkipHash<u64, u64>>,
    stop: &Arc<AtomicBool>,
    count: u64,
) -> Vec<thread::JoinHandle<u64>> {
    (0..count)
        .map(|w| {
            let map = Arc::clone(map);
            let stop = Arc::clone(stop);
            thread::spawn(move || {
                let mut updates = 0u64;
                let mut key = HOT_BAND.start + w;
                while !stop.load(Ordering::Relaxed) {
                    // Churn the key: remove whatever is there, reinsert fresh.
                    map.remove(&key);
                    map.insert(key, updates);
                    updates += 1;
                    key += 7;
                    if key >= HOT_BAND.end {
                        key = HOT_BAND.start + w;
                    }
                }
                updates
            })
        })
        .collect()
}

fn main() {
    let map: Arc<SkipHash<u64, u64>> = Arc::new(
        SkipHashBuilder::new()
            .buckets(65_537)
            .range_policy(RangePolicy::TwoPath { tries: 3 })
            .build(),
    );

    // Baseline population: every 5th key across the universe, so long scans
    // touch plenty of stable data in addition to the hot band.
    for key in (0..UNIVERSE).step_by(5) {
        map.insert(key, 0);
    }
    let stable_keys_in_window = |low: u64, high: u64| -> usize {
        (low..=high)
            .filter(|k| k % 5 == 0 && !HOT_BAND.contains(k))
            .count()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let writers = spawn_writers(&map, &stop, 3);

    // Analytics: long scans spanning the hot band, via the two-path policy.
    let mut scans = 0u64;
    let mut fast_failures_observed = 0u64;
    for _ in 0..100 {
        let low = 15_000u64;
        let high = 30_000u64;

        // Probe the fast path directly once per iteration to observe aborts.
        if map.range_attempt_fast(low..=high).is_none() {
            fast_failures_observed += 1;
        }

        let window: Vec<(u64, u64)> = map.range(low..=high).collect();
        // Stable keys (outside the hot band) must all be present in every
        // linearizable snapshot; hot-band keys may or may not be, but must
        // never appear twice.
        let stable = window
            .iter()
            .filter(|(k, _)| k % 5 == 0 && !HOT_BAND.contains(k))
            .count();
        assert_eq!(stable, stable_keys_in_window(low, high));
        let mut keys: Vec<u64> = window.iter().map(|(k, _)| *k).collect();
        keys.dedup();
        assert_eq!(keys.len(), window.len(), "no key may appear twice");
        scans += 1;
    }

    // Time-travel analytics: pin one snapshot and re-scan it while the
    // writers keep committing.  Every scan of the pinned window is identical
    // — the hot band is frozen at the pin — and the live map keeps moving.
    let snap = map.snapshot();
    let frozen: Vec<(u64, u64)> = snap.range(15_000..=30_000).collect();
    let mut snapshot_rescans = 0u64;
    for _ in 0..25 {
        let again: Vec<(u64, u64)> = snap.range(15_000..=30_000).collect();
        assert_eq!(
            again, frozen,
            "a pinned snapshot must return the same window every time"
        );
        snapshot_rescans += 1;
    }
    let snapshot_version = snap.version();
    drop(snap); // releases custody of the pinned history

    stop.store(true, Ordering::Relaxed);
    let updates: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();

    let stats = map.range_stats();
    println!("writer updates applied      : {updates}");
    println!("two-path scans completed    : {scans}");
    println!("fast-path probes that failed: {fast_failures_observed}");
    println!(
        "identical snapshot re-scans : {snapshot_rescans} (pinned at version {snapshot_version})"
    );
    println!(
        "range stats: {} fast successes, {} fast aborts, {} slow completions",
        stats.fast_path_successes, stats.fast_path_aborts, stats.slow_path_completions
    );
    println!("range_analytics example finished OK");
}
