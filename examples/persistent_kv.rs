//! A persistent key/value store in ~60 lines: the durability tier end to
//! end — logged commits, a durable acknowledgment, a checkpoint, and a
//! simulated restart that recovers everything.
//!
//! ```console
//! $ cargo run --release --example persistent_kv
//! ```
//!
//! The store lives in a temporary directory; run it twice with
//! `PERSISTENT_KV_DIR=/some/path` to watch state survive a real process
//! boundary.

use skiphash_repro::durability::DurableMapBuilder;

fn store_dir() -> std::path::PathBuf {
    std::env::var_os("PERSISTENT_KV_DIR")
        .map(Into::into)
        .unwrap_or_else(|| std::env::temp_dir().join("skiphash-persistent-kv"))
}

fn main() -> std::io::Result<()> {
    let dir = store_dir();
    println!("store directory: {}", dir.display());

    // -- First lifetime: write, acknowledge, checkpoint ------------------
    {
        let map = DurableMapBuilder::new(&dir)
            .checkpoint_every_ops(10_000) // opportunistic background checkpoints
            .open::<u64, u64>()?;
        let info = map.recovery_info();
        println!(
            "opened: {} entries recovered (checkpoint v{}, {} WAL records, torn tail: {})",
            map.len(),
            info.checkpoint_version,
            info.records_replayed,
            info.truncated_tail,
        );

        // Sealed single ops log their commit records asynchronously: the
        // group-commit writer batches them into one fsync.
        for key in 0..100u64 {
            map.upsert(key, key * key);
        }

        // A composed transaction becomes ONE commit record: after a crash
        // either all three ops replay or none do.
        map.transact(|view| {
            let moved = view.take(&7)?.unwrap_or(0);
            view.upsert(1007, moved)?;
            view.upsert(0, 1)?;
            Ok(())
        });

        // The durable variant returns only after the record is fsynced —
        // this is the write a caller may acknowledge to *its* clients.
        map.upsert_durable(42, 4242)?;
        println!("acknowledged key 42 durably; {} entries live", map.len());

        // A checkpoint bounds replay: it snapshots the map at one pinned
        // version, writes the image atomically, and truncates every WAL
        // segment the image covers.
        let at = map.checkpoint()?;
        println!("checkpoint written at version {at}");

        map.upsert(43, 4343); // lands in the WAL suffix after the checkpoint
        map.sync()?; // barrier: everything above is now on stable storage
    } // drop = clean shutdown (an abrupt kill would recover identically)

    // -- Second lifetime: recover and verify -----------------------------
    let map = DurableMapBuilder::new(&dir).open::<u64, u64>()?;
    let info = map.recovery_info();
    println!(
        "reopened: {} entries (checkpoint v{}, {} WAL records replayed on top)",
        map.len(),
        info.checkpoint_version,
        info.records_replayed,
    );
    assert_eq!(
        map.get(&42),
        Some(4242),
        "durably acknowledged write survived"
    );
    assert_eq!(map.get(&43), Some(4343), "post-checkpoint write survived");
    assert_eq!(map.get(&7), None, "the composed transaction replayed whole");
    assert_eq!(map.get(&1007), Some(49), "...including the moved value");
    println!("all recovery invariants hold");
    Ok(())
}
