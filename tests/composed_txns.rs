//! Composed-transaction guarantees: multi-map transfers are atomic under
//! concurrent readers, the read-modify-write entries lose no updates under
//! contention, and an aborted `TxView` operation leaves every touched
//! structure untouched.
//!
//! These are the integration-level checks for the `TxView` tier: the paper's
//! claim is that building on STM makes cross-structure composition *correct
//! by construction*, and this suite is where that claim is allowed to fail.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::stm::{Stm, TxAbort};
use skiphash_repro::{Compute, SkipHash};

type SharedMap = Arc<SkipHash<u64, u64>>;

fn shared_pair() -> (Arc<Stm>, SharedMap, SharedMap) {
    let stm = Arc::new(Stm::new());
    let map = |stm: &Arc<Stm>| {
        Arc::new(
            SkipHashBuilder::new()
                .buckets(1_021)
                .stm(Arc::clone(stm))
                .build::<u64, u64>(),
        )
    };
    (Arc::clone(&stm), map(&stm), map(&stm))
}

/// (a) Multi-key transfers between two maps never expose intermediate states
/// to concurrent readers: every atomically-read snapshot sees each token in
/// exactly one map, and the total token count is conserved.
#[test]
fn transfers_between_maps_are_invisible_in_flight() {
    const TOKENS: u64 = 32;
    const READ_ROUNDS: u64 = 1_500;

    let (stm, left, right) = shared_pair();
    for token in 0..TOKENS {
        assert!(left.insert(token, token + 1_000));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let moves = Arc::new(skiphash_stm::sync::AtomicU64::new(0));
    let movers: Vec<_> = (0..2u64)
        .map(|m| {
            let stm = Arc::clone(&stm);
            let left = Arc::clone(&left);
            let right = Arc::clone(&right);
            let stop = Arc::clone(&stop);
            let moves = Arc::clone(&moves);
            thread::spawn(move || {
                let mut i = m;
                while !stop.load(Ordering::Relaxed) {
                    let token = i % TOKENS;
                    // Move the token to whichever map does not hold it, in
                    // one transaction; both the take and the insert commit
                    // together or not at all.
                    stm.run(|tx| {
                        if let Some(value) = left.view(tx).take(&token)? {
                            right.view(tx).insert(token, value)?;
                        } else if let Some(value) = right.view(tx).take(&token)? {
                            left.view(tx).insert(token, value)?;
                        }
                        Ok(())
                    });
                    moves.fetch_add(1, Ordering::Relaxed);
                    i = i.wrapping_add(3);
                }
            })
        })
        .collect();

    // Audit for at least READ_ROUNDS snapshots AND until the movers have
    // demonstrably raced us (scheduling on a loaded machine can otherwise
    // finish a fixed round count before the movers even start).
    let mut exactly_one = 0u64;
    let mut round = 0u64;
    while round < READ_ROUNDS || moves.load(Ordering::Relaxed) < 200 {
        let token = round % TOKENS;
        // One transaction reads both maps: the linearizable snapshot.
        let (in_left, in_right) =
            stm.run(|tx| Ok((left.view(tx).get(&token)?, right.view(tx).get(&token)?)));
        match (in_left, in_right) {
            (Some(v), None) | (None, Some(v)) => {
                assert_eq!(v, token + 1_000, "token value corrupted in flight");
                exactly_one += 1;
            }
            (Some(_), Some(_)) => panic!("token {token} observed in BOTH maps"),
            (None, None) => panic!("token {token} observed in NEITHER map"),
        }
        // Conservation of the whole population, atomically across both maps.
        if round.is_multiple_of(250) {
            let total = stm.run(|tx| Ok(left.view(tx).len()? + right.view(tx).len()?));
            assert_eq!(total as u64, TOKENS, "tokens duplicated or lost");
        }
        round += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for mover in movers {
        mover.join().unwrap();
    }
    assert!(moves.load(Ordering::Relaxed) >= 200);
    assert_eq!(exactly_one, round);
    assert_eq!(left.len() + right.len(), TOKENS as usize);
    left.check_invariants().expect("left invariants");
    right.check_invariants().expect("right invariants");
}

/// (b) `update` is atomic under contention: concurrent increments through it
/// never lose updates, unlike a naive get-then-upsert pair.
#[test]
fn update_loses_no_increments_under_contention() {
    const THREADS: u64 = 4;
    const INCREMENTS: u64 = 2_000;

    let map: Arc<SkipHash<u64, u64>> = Arc::new(SkipHash::new());
    assert!(map.insert(7, 0));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    let updated = map.update(&7, |v| v + 1);
                    assert!(updated.is_some(), "key vanished mid-test");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(map.get(&7), Some(THREADS * INCREMENTS), "lost updates");
}

/// (b) `compute` is atomic under contention: concurrent token bounces via
/// conditional remove/insert conserve the token count.
#[test]
fn compute_conserves_tokens_under_contention() {
    const THREADS: u64 = 4;
    const ROUNDS: u64 = 1_500;

    let map: Arc<SkipHash<u64, u64>> = Arc::new(SkipHash::new());
    // One counter per thread-pair slot; threads all hammer every key.
    for key in 0..THREADS {
        assert!(map.insert(key, 1));
    }
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                for i in 0..ROUNDS {
                    let key = (t + i) % THREADS;
                    // Collatz-flavoured churn: increment odd counts, halve
                    // even ones, never below 1 — the verdict depends on the
                    // value read in the same transaction.
                    map.compute(key, |current| match current {
                        None => Compute::Put(1),
                        Some(&v) if v % 2 == 1 => Compute::Put(v + 1),
                        Some(&v) if v > 2 => Compute::Put(v / 2),
                        Some(_) => Compute::Keep,
                    });
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // Every key must still be present with a positive value: a torn
    // read-then-write would have been able to resurrect or destroy entries.
    for key in 0..THREADS {
        let v = map.get(&key).expect("key lost under contention");
        assert!(v >= 1);
    }
    assert_eq!(map.len(), THREADS as usize);
    map.check_invariants().expect("invariants");
}

/// (b) `get_or_insert_with` races resolve to a single winner whose value
/// everyone then agrees on.
#[test]
fn get_or_insert_with_has_one_winner() {
    const THREADS: u64 = 4;
    let map: Arc<SkipHash<u64, u64>> = Arc::new(SkipHash::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = Arc::clone(&map);
            thread::spawn(move || map.get_or_insert_with(42, || 1_000 + t))
        })
        .collect();
    let observed: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let committed = map.get(&42).expect("key must exist");
    assert!(
        observed.iter().all(|&v| v == committed),
        "threads observed different initializations: {observed:?} vs committed {committed}"
    );
    assert_eq!(map.len(), 1);
}

/// (c) Aborting a transaction that performed `TxView` operations leaves both
/// structures untouched: values, membership, population counters, and
/// structural invariants all roll back.
#[test]
fn aborted_view_operations_leave_no_trace() {
    let (stm, left, right) = shared_pair();
    assert!(left.insert(1, 10));
    assert!(left.insert(2, 20));
    assert!(right.insert(50, 500));
    let left_before = left.to_vec();
    let right_before = right.to_vec();

    // A transaction that mutates both maps through views, then aborts.
    let outcome = stm.try_once(|tx| -> skiphash_repro::stm::TxResult<()> {
        // Mutate left: remove, overwrite, fresh insert.
        assert_eq!(left.view(tx).take(&1)?, Some(10));
        assert_eq!(left.view(tx).upsert(2, 2_222)?, Some(20));
        assert!(left.view(tx).insert(3, 30)?);
        // Mutate right: transfer-style insert plus an RMW.
        assert!(right.view(tx).insert(1, 10)?);
        right.view(tx).update(&50, |v| v + 1)?;
        // The transaction's own reads see the speculative state...
        assert_eq!(left.view(tx).get(&3)?, Some(30));
        assert_eq!(right.view(tx).get(&50)?, Some(501));
        // ...and then the whole thing aborts.
        Err(TxAbort::Explicit)
    });
    assert!(outcome.is_err());

    // Nothing happened, anywhere.
    assert_eq!(left.to_vec(), left_before, "left map must be untouched");
    assert_eq!(right.to_vec(), right_before, "right map must be untouched");
    assert_eq!(left.len(), 2, "population counter must not drift on abort");
    assert_eq!(right.len(), 1);
    left.check_invariants().expect("left invariants");
    right.check_invariants().expect("right invariants");

    // The same operations, committed, do take effect (the abort above was
    // the only thing holding them back).
    stm.run(|tx| {
        left.view(tx).take(&1)?;
        right.view(tx).insert(1, 10)?;
        Ok(())
    });
    assert_eq!(left.get(&1), None);
    assert_eq!(right.get(&1), Some(10));
}

/// Mixing runtimes must fail fast: a transaction from one `Stm` may not
/// operate on a map owned by another.
#[test]
fn view_rejects_foreign_transactions() {
    let foreign: SkipHash<u64, u64> = SkipHash::new();
    let (stm, _, _) = shared_pair();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run(|tx| {
            let mut v = foreign.view(tx);
            v.insert(1, 1)
        })
    }));
    assert!(result.is_err(), "foreign-runtime view must panic");
    assert!(foreign.is_empty());
}

/// (f) `TxView::len` reads the transactional sharded counter, so a count
/// taken inside a transaction is linearizable with concurrent updates: with
/// writers that only ever insert or remove keys *in pairs* atomically, no
/// reader transaction may ever observe an odd population.
#[test]
fn txview_len_is_transactionally_consistent() {
    let map: SharedMap = Arc::new(SkipHash::new());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let a = 2 * t;
                let b = 2 * t + 1;
                while !stop.load(Ordering::Relaxed) {
                    map.transact(|v| {
                        v.insert(a, t)?;
                        v.insert(b, t)?;
                        Ok(())
                    });
                    map.transact(|v| {
                        v.remove(&a)?;
                        v.remove(&b)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();

    for _ in 0..2_000 {
        let len = map.transact(|v| v.len());
        assert!(
            len.is_multiple_of(2),
            "len must never observe a half-applied pair (saw {len})"
        );
        let (len2, empty) = map.transact(|v| Ok((v.len()?, v.is_empty()?)));
        assert_eq!(empty, len2 == 0, "is_empty must agree with len");
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }

    // Quiescent cross-checks: the counter agrees with the sealed tier and
    // the level-0 walk (check_invariants re-walks internally).
    assert_eq!(map.transact(|v| v.len()), map.len());
    map.check_invariants()
        .expect("counter consistent after churn");
}
