//! Torn-tail corpus: recovery over systematically mutilated durability
//! files.
//!
//! A crash can cut a WAL segment anywhere — not just between frames — and
//! failing hardware can flip bits in headers, payloads, or CRCs.  This
//! suite generates a real log + checkpoint with `DurableMap`, then feeds
//! recovery every mutilation in a dense corpus:
//!
//! * truncation at **every** byte length of the live segment (a superset
//!   of "every frame boundary ±1 byte"),
//! * a single bit flip at every byte of the segment (covers the segment
//!   header, every frame header, every payload, and every CRC),
//! * the same treatment for the checkpoint image.
//!
//! Invariants checked for every corpus entry:
//!
//! 1. recovery never panics and never returns `Err` (corruption is
//!    truncation, not failure);
//! 2. a truncated segment recovers exactly the frames wholly contained in
//!    the surviving prefix — the longest valid prefix, nothing more;
//! 3. replayed records are always a stamp-prefix of the original commit
//!    sequence (no gaps: if record `i` survives, so does every record
//!    before it);
//! 4. any mutilation that loses data is reported via `truncated_tail`.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use skiphash_repro::durability::wal::{
    decode_record, parse_segment_header, segment_name, FrameIter, Op, SEGMENT_HEADER_BYTES,
};
use skiphash_repro::durability::{recover, DurableMapBuilder, MemStorage, Storage, WalConfig};

const DIR: &str = "/corpus";

fn fast_wal() -> WalConfig {
    WalConfig {
        flush_interval: Duration::from_micros(100),
        ..WalConfig::default()
    }
}

/// Build a directory holding one WAL segment with several multi-op
/// records.  Returns the storage and the reference commit sequence
/// (stamp-ordered) parsed back from the intact segment.
type Records = Vec<(u64, Vec<Op<u64, u64>>)>;

fn build_wal_fixture() -> (MemStorage, Records) {
    let storage = MemStorage::new();
    {
        let map = DurableMapBuilder::new(DIR)
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .open::<u64, u64>()
            .unwrap();
        // A mix of shapes: single-op puts, a removal, and a composed
        // multi-op record, so frame lengths vary across the corpus.
        for i in 0..6u64 {
            map.upsert(i, i * 100);
        }
        map.remove(&3);
        map.transact(|view| {
            view.upsert(10, 1)?;
            view.upsert(11, 2)?;
            view.remove(&0)?;
            Ok(())
        });
        map.sync().unwrap();
    }
    let bytes = storage
        .bytes(&Path::new(DIR).join(segment_name(1)))
        .expect("fixture segment exists");
    let (_, body) = parse_segment_header(&bytes).expect("fixture header is valid");
    let mut frames = FrameIter::new(body);
    let mut records: Vec<(u64, Vec<Op<u64, u64>>)> = Vec::new();
    for payload in &mut frames {
        records.push(decode_record(payload).expect("fixture frames decode"));
    }
    assert!(!frames.truncated(), "fixture must be intact");
    records.sort_by_key(|(stamp, _)| *stamp);
    assert!(records.len() >= 8, "corpus needs a real record population");
    (storage, records)
}

/// Byte offsets (from the start of the file) at which each frame ends —
/// the "frame boundaries" of the corpus.  The first entry is the end of
/// the segment header.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let (_, body) = parse_segment_header(bytes).unwrap();
    let mut boundaries = vec![SEGMENT_HEADER_BYTES];
    let mut it = FrameIter::new(body);
    while it.next().is_some() {
        boundaries.push(SEGMENT_HEADER_BYTES + it.consumed());
    }
    boundaries
}

/// Replay a stamp-sorted prefix of the commit sequence into a model map.
fn replay_model(records: &[(u64, Vec<Op<u64, u64>>)]) -> Vec<(u64, u64)> {
    let mut model = std::collections::BTreeMap::new();
    for (_, ops) in records {
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    model.insert(*k, *v);
                }
                Op::Remove(k) => {
                    model.remove(k);
                }
            }
        }
    }
    model.into_iter().collect()
}

#[test]
fn truncation_at_every_byte_recovers_the_longest_valid_prefix() {
    let (storage, records) = build_wal_fixture();
    let path = Path::new(DIR).join(segment_name(1));
    let intact = storage.bytes(&path).unwrap();
    let boundaries = frame_boundaries(&intact);
    assert_eq!(*boundaries.last().unwrap(), intact.len());

    for cut in 0..=intact.len() {
        storage.put(&path, intact[..cut].to_vec());
        let rec = recover::<u64, u64>(&storage, Path::new(DIR))
            .unwrap_or_else(|e| panic!("cut at {cut} bytes must not error: {e}"));

        // Frames wholly inside the cut survive; in-flight frames do not.
        let survivors = boundaries
            .iter()
            .filter(|&&b| b <= cut)
            .count()
            .saturating_sub(1);
        assert_eq!(
            rec.records_replayed as usize, survivors,
            "cut at {cut}: expected {survivors} surviving frames"
        );
        assert_eq!(
            rec.entries,
            replay_model(&records[..survivors]),
            "cut at {cut}: recovered state must equal the model prefix"
        );
        // A cut exactly at a frame boundary is indistinguishable from a
        // shorter clean log; every other cut must be reported as a tear.
        if boundaries.contains(&cut) {
            assert!(
                !rec.truncated_tail,
                "cut at {cut} is a clean frame boundary"
            );
        } else {
            assert!(
                rec.truncated_tail,
                "cut at {cut} loses data; must report it"
            );
        }
        // Prefix property: the max stamp is the last surviving record's.
        let expect_stamp = records[..survivors].last().map_or(0, |(s, _)| *s);
        assert_eq!(rec.max_stamp, expect_stamp, "cut at {cut}");
    }
    storage.put(&path, intact);
}

#[test]
fn bit_flip_at_every_byte_never_panics_and_keeps_the_clean_prefix() {
    let (storage, records) = build_wal_fixture();
    let path = Path::new(DIR).join(segment_name(1));
    let intact = storage.bytes(&path).unwrap();
    let boundaries = frame_boundaries(&intact);

    for byte in 0..intact.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = intact.clone();
            bad[byte] ^= 1 << bit;
            storage.put(&path, bad);
            let rec = recover::<u64, u64>(&storage, Path::new(DIR))
                .unwrap_or_else(|e| panic!("flip at byte {byte} bit {bit} must not error: {e}"));

            // A flip in the segment header invalidates the whole segment;
            // a flip inside frame `i` keeps exactly the frames before it
            // (CRC32 detects every single-bit error, and recovery stops
            // at the first bad frame).
            let survivors = if byte < SEGMENT_HEADER_BYTES {
                0
            } else {
                boundaries
                    .iter()
                    .filter(|&&b| b <= byte)
                    .count()
                    .saturating_sub(1)
            };
            assert_eq!(
                rec.records_replayed as usize, survivors,
                "flip at byte {byte} bit {bit}: exactly the clean prefix replays"
            );
            assert_eq!(
                rec.entries,
                replay_model(&records[..survivors]),
                "flip at byte {byte} bit {bit}: recovered state equals the model prefix"
            );
            assert!(
                rec.truncated_tail,
                "flip at byte {byte} bit {bit} loses data; must report it"
            );
        }
    }
    storage.put(&path, intact);
}

#[test]
fn frame_boundary_neighborhood_is_exact() {
    // The named corpus: every frame boundary ±1 byte.  Covered by the
    // every-byte sweep above, but pinned separately so a future
    // optimization of the dense sweep cannot silently drop these cases.
    let (storage, records) = build_wal_fixture();
    let path = Path::new(DIR).join(segment_name(1));
    let intact = storage.bytes(&path).unwrap();
    let boundaries = frame_boundaries(&intact);

    for (i, &b) in boundaries.iter().enumerate() {
        for cut in [b.saturating_sub(1), b, (b + 1).min(intact.len())] {
            storage.put(&path, intact[..cut].to_vec());
            let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
            let survivors = boundaries
                .iter()
                .filter(|&&x| x <= cut)
                .count()
                .saturating_sub(1);
            assert_eq!(
                rec.records_replayed as usize, survivors,
                "boundary {i} at {b}, cut {cut}"
            );
            assert_eq!(rec.entries, replay_model(&records[..survivors]));
        }
    }
    storage.put(&path, intact);
}

#[test]
fn checkpoint_mutilation_falls_back_without_inventing_data() {
    // Mutilating the checkpoint image must make recovery fall back — to
    // an older image or to pure WAL replay — never to a panic, an error,
    // or a partial image applied as if whole.
    let storage = MemStorage::new();
    {
        let map = DurableMapBuilder::new(DIR)
            .storage(Arc::new(storage.clone()))
            .wal_config(fast_wal())
            .open::<u64, u64>()
            .unwrap();
        for i in 0..8u64 {
            map.upsert(i, i + 1);
        }
        map.sync().unwrap();
        map.checkpoint().unwrap();
    }
    let expected: Vec<(u64, u64)> = (0..8u64).map(|i| (i, i + 1)).collect();
    let names = storage.list(Path::new(DIR)).unwrap();
    let ckpt_name = names
        .iter()
        .find(|n| n.starts_with("ckpt-") && n.ends_with(".img"))
        .expect("checkpoint image exists")
        .clone();
    let ckpt_path = Path::new(DIR).join(&ckpt_name);
    let intact = storage.bytes(&ckpt_path).unwrap();

    // Clean baseline: recovery reconstructs the full map.
    let rec = recover::<u64, u64>(&storage, Path::new(DIR)).unwrap();
    assert_eq!(rec.entries, expected);

    // Recovered entries must always be a subset of what was committed —
    // whether the fall-back path has the full WAL (checkpoint's rotation
    // raced ahead of truncation) or only a truncated one.
    let assert_no_invention = |rec: &skiphash_repro::durability::Recovered<u64, u64>,
                               what: &str| {
        for (k, v) in &rec.entries {
            assert_eq!(
                expected.iter().find(|(ek, _)| ek == k).map(|(_, ev)| ev),
                Some(v),
                "{what}: entry ({k},{v}) was never committed"
            );
        }
    };

    for cut in 0..intact.len() {
        storage.put(&ckpt_path, intact[..cut].to_vec());
        let rec = recover::<u64, u64>(&storage, Path::new(DIR))
            .unwrap_or_else(|e| panic!("ckpt cut at {cut} must not error: {e}"));
        assert!(rec.truncated_tail, "ckpt cut at {cut} must be reported");
        assert_no_invention(&rec, &format!("ckpt cut at {cut}"));
    }
    for byte in 0..intact.len() {
        let mut bad = intact.clone();
        bad[byte] ^= 0x10;
        storage.put(&ckpt_path, bad);
        let rec = recover::<u64, u64>(&storage, Path::new(DIR))
            .unwrap_or_else(|e| panic!("ckpt flip at {byte} must not error: {e}"));
        assert!(rec.truncated_tail, "ckpt flip at {byte} must be reported");
        assert_no_invention(&rec, &format!("ckpt flip at {byte}"));
    }
    storage.put(&ckpt_path, intact);
}
