//! Stress tests for epoch-based reclamation under contention.
//!
//! The epoch shim's hot path is lock-free (per-thread pinned slots,
//! per-thread garbage bags sealed into a global stack on flush), which means
//! its failure modes are silent: a leak shows up as memory growth, a
//! double-free or premature free as corruption.  These tests make both loud
//! with drop-counting payloads — every allocation carries a counter bumped
//! exactly once on drop plus a flag that panics on a second drop — and are
//! the designated targets for the AddressSanitizer CI job.

use skiphash_stm::sync::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_epoch::{self as epoch, Atomic, Owned};
use skiphash::{RangePolicy, RemovalPolicy, SkipHash};
use skiphash_stm::{Stm, TCell, TxAbort, TxResult};

/// A payload whose drop is observable and must happen exactly once.
struct Tracked {
    drops: Arc<AtomicUsize>,
    dropped: AtomicBool,
}

impl Tracked {
    fn new(drops: &Arc<AtomicUsize>) -> Self {
        Self {
            drops: Arc::clone(drops),
            dropped: AtomicBool::new(false),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        // SC: drop bookkeeping — strongest ordering so the double-free flag
        // and the counter agree across whichever thread runs the destructor.
        assert!(
            !self.dropped.swap(true, Ordering::SeqCst),
            "double free: payload dropped twice"
        );
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

/// Drive pins (and therefore collection cycles) until `drops` reaches
/// `expected` or the deadline passes.  Other tests in this process may hold
/// pins transiently, so collection timing is not deterministic.
fn drive_reclamation(drops: &AtomicUsize, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the drop counter in the same total order the destructors use.
    while drops.load(Ordering::SeqCst) < expected && Instant::now() < deadline {
        drop(epoch::pin());
    }
}

/// Many threads churning `defer_destroy` on shared atomics under contention:
/// every retired payload must be freed exactly once, and the live payloads
/// must survive until teardown.
#[test]
fn concurrent_defer_destroy_frees_everything_exactly_once() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 2_000;
    const CELLS: usize = 16;

    let drops = Arc::new(AtomicUsize::new(0));
    let cells: Arc<Vec<Atomic<Tracked>>> = Arc::new(
        (0..CELLS)
            .map(|_| Atomic::new(Tracked::new(&drops)))
            .collect(),
    );

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cells = Arc::clone(&cells);
            let drops = Arc::clone(&drops);
            thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let guard = epoch::pin();
                    let cell = &cells[(t + i) % CELLS];
                    let old = cell.swap(Owned::new(Tracked::new(&drops)), Ordering::AcqRel, &guard);
                    // SAFETY: `old` became unreachable at the swap; any
                    // thread that loaded it is still pinned.
                    unsafe { guard.defer_destroy(old) };
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Every swap retired one payload; the CELLS current payloads are live.
    let retired = THREADS * OPS_PER_THREAD;
    drive_reclamation(&drops, retired);
    // SC: drop-balance assertions read the counters post-join.
    assert_eq!(
        drops.load(Ordering::SeqCst),
        retired,
        "leak: not every retired payload was freed"
    );

    // Tear down the survivors with exclusive access.
    unsafe {
        let guard = epoch::unprotected();
        for cell in cells.iter() {
            drop(cell.load(Ordering::Relaxed, guard).into_owned());
        }
    }
    // SC: final drop-balance read.
    assert_eq!(drops.load(Ordering::SeqCst), retired + CELLS);
}

/// A value whose clones and drops are tallied, so any imbalance (leak or
/// double free) at the STM layer is observable as a nonzero live count.
#[derive(Debug)]
struct Balanced {
    live: Arc<AtomicIsize>,
    value: u64,
}

impl Balanced {
    fn new(live: &Arc<AtomicIsize>, value: u64) -> Self {
        // SC: live-count bookkeeping — strongest ordering so construction,
        // clone, and drop tallies agree across threads.
        live.fetch_add(1, Ordering::SeqCst);
        Self {
            live: Arc::clone(live),
            value,
        }
    }
}

impl Clone for Balanced {
    fn clone(&self) -> Self {
        // SC: live-count bookkeeping (see `Balanced::new`).
        self.live.fetch_add(1, Ordering::SeqCst);
        Self {
            live: Arc::clone(&self.live),
            value: self.value,
        }
    }
}

impl Drop for Balanced {
    fn drop(&mut self) {
        // SC: live-count bookkeeping (see `Balanced::new`).
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Writer transactions batching several retirements per commit (the `Txn`
/// bag) race readers; once everything quiesces and the cells are dropped,
/// every clone ever made must have been dropped exactly once.
#[test]
fn stm_commit_batches_balance_allocations_and_drops() {
    const THREADS: usize = 6;
    const TXNS_PER_THREAD: usize = 400;
    const CELLS: usize = 8;

    let live = Arc::new(AtomicIsize::new(0));
    let stm = Arc::new(Stm::new());
    let cells: Arc<Vec<TCell<Balanced>>> = Arc::new(
        (0..CELLS as u64)
            .map(|i| TCell::new(Balanced::new(&live, i)))
            .collect(),
    );

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = Arc::clone(&stm);
            let cells = Arc::clone(&cells);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    if (t + i) % 3 == 0 {
                        // Reader: clone a couple of values.
                        stm.run(|tx| {
                            let a = cells[i % CELLS].read(tx)?;
                            let b = cells[(i + 1) % CELLS].read(tx)?;
                            Ok(a.value + b.value)
                        });
                    } else {
                        // Writer: retire two old values per commit, one of
                        // them twice (exercising the same-cell overwrite
                        // branch of the transaction's retirement bag).
                        stm.run(|tx| {
                            let target = &cells[i % CELLS];
                            target.write(tx, Balanced::new(&live, i as u64))?;
                            target.write(tx, Balanced::new(&live, i as u64 + 1))?;
                            cells[(i + 2) % CELLS].write(tx, Balanced::new(&live, i as u64))?;
                            Ok(())
                        });
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Drop the cells (freeing the current values), then drive the epoch
    // until every retired clone has been reclaimed.
    drop(Arc::try_unwrap(cells).unwrap_or_else(|_| panic!("all worker handles joined")));
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the live count in the same total order the tallies use.
    while live.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
        drop(epoch::pin());
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "allocation/drop imbalance after quiescence (positive = leak, negative = double free)"
    );
}

/// Regression for the PR-1 use-after-free: objects allocated through
/// `Txn::alloc` must survive the rollback that follows an abort — the
/// aborting attempt rolls back writes *through the object's cells* after the
/// body's own `Arc` is gone — and must be released afterwards.
#[test]
fn txn_alloc_objects_survive_abort_and_rollback() {
    struct Widget {
        live: Arc<AtomicIsize>,
        a: TCell<u64>,
        b: TCell<u64>,
    }
    impl Drop for Widget {
        fn drop(&mut self) {
            // SC: live-count bookkeeping (see `Balanced::new`).
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let stm = Stm::new();
    let live = Arc::new(AtomicIsize::new(0));

    for round in 0..50u64 {
        let outcome: Result<_, _> = stm.try_once(|tx| -> TxResult<()> {
            // SC: live-count bookkeeping (see `Balanced::new`).
            live.fetch_add(1, Ordering::SeqCst);
            let widget = tx.alloc(Widget {
                live: Arc::clone(&live),
                a: TCell::new(0),
                b: TCell::new(0),
            });
            widget.a.write(tx, round)?;
            widget.b.write(tx, round + 1)?;
            // Abort after writing the fresh object's cells: rollback must
            // walk back through them, which is only safe because `alloc`
            // registered the object with the transaction.
            Err(TxAbort::Explicit)
        });
        assert!(outcome.is_err());
    }

    // Aborted attempts must not leak the registered objects.
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the live count in the same total order the tallies use.
    while live.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
        drop(epoch::pin());
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "aborted Txn::alloc objects were never released"
    );
}

/// The slab under churn: contended writers recycle payload blocks across
/// threads (a block retired by one thread's commit is freed by whichever
/// thread drives collection and reused by *its* next write), aborted
/// attempts retire through the rollback glue, non-transactional
/// `store_atomic` shares the same blocks, and an oversized payload exercises
/// the `Box` fallback side by side.  Every clone ever made must be dropped
/// exactly once — a double free into the slab free list would surface here
/// (and under ASan) as an imbalance or corruption.
#[test]
fn slab_recycling_balances_drops_under_cross_thread_churn() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 2_000;
    const CELLS: usize = 8;

    let live = Arc::new(AtomicIsize::new(0));
    let stm = Arc::new(Stm::new());
    // 24-byte `Balanced` payloads ride the slab; the 1 KiB array cells take
    // the Box fallback (ineligible size) in the same transactions.  The
    // `store_cells` are dedicated to non-transactional `store_atomic` /
    // `load_atomic` traffic (mixing those with transactional writes on one
    // cell is outside `store_atomic`'s init/teardown contract) — they churn
    // the same slab classes from a different entry point.
    let cells: Arc<Vec<TCell<Balanced>>> = Arc::new(
        (0..CELLS as u64)
            .map(|i| TCell::new(Balanced::new(&live, i)))
            .collect(),
    );
    let store_cells: Arc<Vec<TCell<Balanced>>> = Arc::new(
        (0..CELLS as u64)
            .map(|i| TCell::new(Balanced::new(&live, i)))
            .collect(),
    );
    let big: Arc<TCell<[u8; 1024]>> = Arc::new(TCell::new([0; 1024]));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = Arc::clone(&stm);
            let cells = Arc::clone(&cells);
            let store_cells = Arc::clone(&store_cells);
            let big = Arc::clone(&big);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    match (t + i) % 4 {
                        // Contended transactional writer (conflicts force the
                        // rollback retirement glue under the hood).
                        0 | 1 => {
                            stm.run(|tx| {
                                let cell = &cells[(t + i) % CELLS];
                                let current = cell.read(tx)?;
                                cell.write(tx, Balanced::new(&live, current.value + 1))?;
                                big.write(tx, [i as u8; 1024])
                            });
                        }
                        // Non-transactional store sharing the same slab.
                        2 => {
                            store_cells[(t + i) % CELLS]
                                .store_atomic(Balanced::new(&live, i as u64));
                        }
                        // Reader cloning values out of recycled blocks.
                        _ => {
                            let value = store_cells[(t + i) % CELLS].load_atomic();
                            // SC: live-count bookkeeping read.
                            assert!(value.live.load(Ordering::SeqCst) > 0);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    assert!(
        stm.stats().slab_recycle_hits > 0,
        "the churn must actually recycle slab blocks"
    );

    drop(big);
    drop(Arc::try_unwrap(cells).unwrap_or_else(|_| panic!("all worker handles joined")));
    drop(Arc::try_unwrap(store_cells).unwrap_or_else(|_| panic!("all worker handles joined")));
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the live count in the same total order the tallies use.
    while live.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
        drop(epoch::pin());
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "allocation/drop imbalance after slab churn (positive = leak, negative = double free)"
    );
}

/// End-to-end churn through the skip hash: inserts and removals retire nodes
/// and hash-chain vectors through the batched transaction bags while range
/// queries hold pins; the map must stay consistent throughout.  (Memory
/// errors here are the ASan job's concern.)
#[test]
fn skiphash_churn_under_concurrent_range_queries() {
    let map: Arc<SkipHash<u64, u64>> = Arc::new(
        SkipHash::<u64, u64>::builder()
            .range_policy(RangePolicy::TwoPath { tries: 3 })
            .removal_policy(RemovalPolicy::Buffered(8))
            .build(),
    );
    for key in 0..512u64 {
        map.insert(key, key);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = (t * 997 + i * 13) % 1024;
                if i.is_multiple_of(2) {
                    map.insert(key, i);
                } else {
                    map.remove(&key);
                }
                i += 1;
            }
        }));
    }
    for _ in 0..200 {
        let snapshot: Vec<(u64, u64)> = map.range(0..=1023).collect();
        // Range results are sorted and duplicate-free.
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0));
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        handle.join().unwrap();
    }
    map.check_invariants().expect("invariants after churn");
}

/// Bounded custody: churn the map while N snapshots are live and watch the
/// history backlog.  The registry preserves at most one displaced payload
/// per cell per pin window — so the backlog must *plateau* well below the
/// number of displacements the churn performs — and dropping the last
/// snapshot must drain it entirely, rebalance every drop counter, and let
/// the node/chain arenas resume recycling.  A designated ASan target: the
/// snapshot reads resolve payloads out of the history table while the
/// writers that displaced them keep committing.
#[test]
fn snapshot_custody_plateaus_and_drains_after_last_drop() {
    const WRITERS: u64 = 4;
    const KEYS_PER_WRITER: u64 = 64;
    const OPS_PER_WRITER: u64 = 2_000;
    const SNAPSHOTS: usize = 4;

    let live = Arc::new(AtomicIsize::new(0));
    let map: Arc<SkipHash<u64, Balanced>> = Arc::new(SkipHash::new());
    let universe = WRITERS * KEYS_PER_WRITER;
    for key in 0..universe {
        assert!(map.insert(key, Balanced::new(&live, key)));
    }

    let backlog_baseline = skiphash_stm::snapshot::live_history_entries();
    let snaps: Vec<_> = (0..SNAPSHOTS).map(|_| map.snapshot()).collect();

    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let map = Arc::clone(&map);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                // Each writer owns a disjoint key slice, so every take and
                // reinsert succeeds and keeps displacing payloads the
                // snapshots still need.
                let base = t * KEYS_PER_WRITER;
                for i in 0..OPS_PER_WRITER {
                    let key = base + (i % KEYS_PER_WRITER);
                    assert!(map.take(&key).is_some());
                    assert!(map.insert(key, Balanced::new(&live, i + 1_000_000)));
                }
            })
        })
        .collect();

    // Audit the pinned state while the storm runs: original values resolve
    // out of the history table, and the population is frozen at the pin.
    let mut max_backlog = 0usize;
    for round in 0..50u64 {
        let snap = &snaps[(round as usize) % SNAPSHOTS];
        let key = (round * 13) % universe;
        let value = snap.get(&key).expect("prefilled key visible at the pin");
        assert_eq!(value.value, key, "snapshot must see the pre-churn value");
        assert_eq!(snap.len() as u64, universe);
        max_backlog = max_backlog.max(skiphash_stm::snapshot::live_history_entries());
    }
    for handle in handles {
        handle.join().unwrap();
    }
    max_backlog = max_backlog.max(skiphash_stm::snapshot::live_history_entries());

    // Boundedness: the churn displaced payloads across ~8000 take+insert
    // pairs (each touching several cells), but custody holds at most one
    // entry per cell per pin window — nodes created after the pins
    // contribute nothing.  A leaky keep-everything policy would push the
    // backlog toward the displacement count; the plateau stays an order of
    // magnitude under it.
    let displacement_floor = (WRITERS * OPS_PER_WRITER * 2) as usize;
    assert!(
        max_backlog - backlog_baseline < displacement_floor / 2,
        "custody backlog {max_backlog} (baseline {backlog_baseline}) is not \
         bounded by the pin windows"
    );
    assert!(
        skiphash_stm::snapshot::live_history_entries() > backlog_baseline,
        "the churn must actually route displaced payloads into custody"
    );

    // Snapshots still replay their pinned state after the storm.
    for snap in &snaps {
        assert_eq!(snap.len() as u64, universe);
    }

    // Dropping the last snapshot releases custody synchronously: the
    // backlog gauge returns to baseline (writers are joined, so no racing
    // commit can repopulate it).
    drop(snaps);
    assert_eq!(
        skiphash_stm::snapshot::live_history_entries(),
        backlog_baseline,
        "history backlog must drain when the last snapshot drops"
    );

    // With custody released, continued churn recycles node and chain blocks
    // again (the freed history payloads returned their node references).
    let stats_mid = map.stm_stats();
    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let map = Arc::clone(&map);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                let base = t * KEYS_PER_WRITER;
                for i in 0..OPS_PER_WRITER {
                    let key = base + (i % KEYS_PER_WRITER);
                    assert!(map.take(&key).is_some());
                    assert!(map.insert(key, Balanced::new(&live, i + 2_000_000)));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let resumed = map.stm_stats().since(&stats_mid);
    assert!(
        resumed.node_recycle_hits > 0,
        "node recycling must resume once custody is released (saw {resumed})"
    );
    assert!(
        resumed.chain_recycle_hits > 0,
        "chain recycling must resume once custody is released (saw {resumed})"
    );

    map.check_invariants()
        .expect("invariants after custody churn");

    // Teardown rebalances every drop counter: nothing the snapshots kept
    // alive may leak, and nothing may be freed twice.
    drop(map);
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the live count in the same total order the tallies use.
    while live.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
        drop(epoch::pin());
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "drop imbalance after snapshot custody churn (positive = leak, \
         negative = double free)"
    );
}

/// Cross-thread structural churn through the node/chain arena: every node
/// block, inline tower, and hash-chain buffer retired by one thread may be
/// recycled by another (whoever drives epoch collection).  Drop-counting
/// values prove the arena's reclamation glue runs exactly once per node —
/// a leak or double free shows up as a nonzero live count — and the recycle
/// counters prove the blocks actually came back through the pools rather
/// than the global allocator.  This is a designated ASan target; note that
/// recycling hides use-after-free *within* a reused block from ASan, which
/// is exactly why the drop balance is asserted here.
#[test]
fn node_arena_balances_drops_under_cross_thread_churn() {
    const THREADS: u64 = 6;
    const OPS_PER_THREAD: u64 = 2_000;

    let live = Arc::new(AtomicIsize::new(0));
    let map: Arc<SkipHash<u64, Balanced>> = Arc::new(SkipHash::new());
    let stats_before = map.stm_stats();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let map = Arc::clone(&map);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                // Disjoint key ranges: every insert succeeds, so the
                // node-per-insert accounting below is exact.
                let base = t * 1_000_000;
                for i in 0..OPS_PER_THREAD {
                    let key = base + (i % 64);
                    map.insert(key, Balanced::new(&live, i));
                    if let Some(value) = map.take(&key) {
                        drop(value);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    map.check_invariants().expect("invariants after churn");
    let stats = map.stm_stats().since(&stats_before);
    assert!(
        stats.node_recycle_hits > 0,
        "cross-thread churn must serve node blocks from recycled arena memory \
         (saw {stats})"
    );
    assert!(
        stats.chain_recycle_hits > 0,
        "cross-thread churn must serve chain buffers from recycled arena memory \
         (saw {stats})"
    );

    // Tear the map down and drive collection until every Balanced the test
    // ever created has been dropped exactly once: node blocks hold values in
    // their cells, so a leaked (or double-freed) block breaks the balance.
    drop(map);
    let deadline = Instant::now() + Duration::from_secs(60);
    // SC: poll the live count in the same total order the tallies use.
    while live.load(Ordering::SeqCst) != 0 && Instant::now() < deadline {
        drop(epoch::pin());
    }
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "every value must be dropped exactly once after arena reclamation"
    );
}
