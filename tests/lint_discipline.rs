//! Concurrency-discipline lint: a source-scan tripwire over the workspace's
//! own code (everything outside `vendor/`), extending the
//! `tests/unsafe_audit.rs` pattern from unsafe blocks to atomics discipline.
//!
//! Four rules:
//!
//! 1. **No facade bypasses** — `std::sync::atomic` / `core::sync::atomic`
//!    must not be named in code outside the `stm::sync` facade
//!    (`crates/stm/src/sync.rs`) and the model checker itself
//!    (`crates/model/src/`), which by construction must touch std.  A
//!    bypass elsewhere is invisible to the model checker: its loads and
//!    stores are not schedule points and the race detector cannot see its
//!    happens-before edges.  Deliberate exceptions (the allocator internals
//!    the facade docs name, reporting-only counters) carry an adjacent
//!    `// FACADE-EXEMPT:` comment stating why.
//! 2. **`Ordering::SeqCst` needs a justification** — every SC use outside
//!    `crates/model/src/` (where orderings are the *subject matter*, not a
//!    choice) carries an adjacent `// SC:` comment naming the total-order
//!    property it buys.  SC is the strongest and most expensive ordering;
//!    an unjustified one is either a missing proof or a hidden perf bug.
//! 3. **`unsafe impl` / `unsafe trait` needs a `SAFETY:` comment** — the
//!    unsafe-audit rule, extended to the root-package tests and examples
//!    that `tests/unsafe_audit.rs` does not walk.
//! 4. **No panics in recovery code** — `.unwrap()` / `.expect(` in
//!    `crates/durability/src/` production code (test modules are cut off at
//!    the first `#[cfg(test)]` line).  Durability code runs against storage
//!    that tears, truncates, and flips bits by contract; a panic there turns
//!    survivable corruption into an unrecoverable crash loop.  Failures must
//!    surface as `Result`, or carry an adjacent `// PANIC-OK:` comment
//!    proving the invariant that makes the panic unreachable.  (`unwrap_or`
//!    and friends are fallbacks, not panics, and do not trigger.)
//!
//! Like the unsafe audit, this is a lexical scan, not a parser: string
//! literal contents are blanked, pure comment lines are skipped, and a
//! justification counts when its marker appears in a comment on the same
//! line or within [`WINDOW`] lines above.  The fixtures at the bottom prove
//! both polarities: the seeded-bug strings must be flagged, their justified
//! twins must pass.  (This file is excluded from the walk — its fixtures
//! embed the violations on purpose.)

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How far above a flagged line a justification comment may sit.
const WINDOW: usize = 12;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the umbrella crate *is* the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The code part of a line: trailing `//` comment removed and every string
/// literal's contents blanked, so a trigger named inside a message or a
/// comment does not count as a use.  (Lexical: multi-line strings are not
/// tracked, which is why this file excludes itself from the walk.)
fn code_part(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_string = !in_string;
                out.push('"');
            }
            '\\' if in_string => {
                // Skip the escaped character (keeps `\"` from closing).
                let _ = chars.next();
            }
            '/' if !in_string && chars.peek() == Some(&'/') => break,
            _ if in_string => {}
            _ => out.push(c),
        }
    }
    out
}

fn is_comment_or_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

/// True when `marker` appears inside a comment on this line.
fn has_marker(line: &str, marker: &str) -> bool {
    line.find("//").is_some_and(|i| line[i..].contains(marker))
}

/// Marker on the same line, or within `WINDOW` lines above.  Unlike the
/// unsafe audit, intervening code lines do not break adjacency: SC sites
/// cluster (multi-line method chains, paired store/fence sequences) and one
/// comment legitimately covers the cluster below it.
fn justified(lines: &[&str], idx: usize, marker: &str) -> bool {
    let lo = idx.saturating_sub(WINDOW);
    lines[lo..=idx].iter().any(|l| has_marker(l, marker))
}

struct Rule {
    name: &'static str,
    triggers: &'static [&'static str],
    marker: &'static str,
    /// Paths (workspace-relative, `/`-separated) this rule does not apply to.
    exempt: fn(&str) -> bool,
    /// When false, scanning stops at the file's first `#[cfg(test)]` line —
    /// for rules about production code whose test modules are exempt.
    scan_tests: bool,
    hint: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "facade-bypass",
        triggers: &["std::sync::atomic", "core::sync::atomic"],
        marker: "FACADE-EXEMPT:",
        exempt: |rel| rel == "crates/stm/src/sync.rs" || rel.starts_with("crates/model/src/"),
        scan_tests: true,
        hint: "import atomics from the stm::sync facade so the model checker \
               can instrument them, or justify with an adjacent \
               `// FACADE-EXEMPT: <why>` comment",
    },
    Rule {
        name: "unjustified-seqcst",
        triggers: &["Ordering::SeqCst"],
        marker: "SC:",
        exempt: |rel| rel.starts_with("crates/model/src/"),
        scan_tests: true,
        hint: "say what the total order buys with an adjacent `// SC: <why>` \
               comment, or weaken the ordering",
    },
    Rule {
        name: "unsafe-impl",
        triggers: &["unsafe impl", "unsafe trait"],
        marker: "SAFETY:",
        exempt: |_| false,
        scan_tests: true,
        hint: "justify the impl with an adjacent `// SAFETY: <why>` comment",
    },
    Rule {
        name: "recovery-unwrap",
        triggers: &[".unwrap()", ".expect("],
        marker: "PANIC-OK:",
        exempt: |rel| !rel.starts_with("crates/durability/src/"),
        scan_tests: false,
        hint: "durability code runs against storage that corrupts by \
               contract; surface the failure as a Result, or prove the panic \
               unreachable with an adjacent `// PANIC-OK: <why>` comment",
    },
];

#[derive(Debug)]
struct Violation {
    rel: String,
    line: usize,
    rule: &'static str,
    text: String,
}

/// Scan one file's text; `rel` is its workspace-relative path.
fn scan(rel: &str, text: &str) -> Vec<Violation> {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let mut violations = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        if is_comment_or_attr(raw) {
            continue;
        }
        let code = code_part(raw);
        for rule in RULES {
            if (rule.exempt)(rel) {
                continue;
            }
            if !rule.scan_tests && idx >= test_start {
                continue;
            }
            if rule.triggers.iter().any(|t| code.contains(t))
                && !justified(&lines, idx, rule.marker)
            {
                violations.push(Violation {
                    rel: rel.to_string(),
                    line: idx + 1,
                    rule: rule.name,
                    text: raw.trim().to_string(),
                });
            }
        }
    }
    violations
}

#[test]
fn workspace_obeys_concurrency_discipline() {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        rust_sources(&root.join(dir), &mut files);
    }
    files.sort();
    assert!(
        !files.is_empty(),
        "lint found no sources — is the test running from the workspace root?"
    );

    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if rel == "tests/lint_discipline.rs" {
            continue; // this file's fixtures embed violations on purpose
        }
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("unreadable source file {rel}: {e}"));
        violations.extend(scan(&rel, &text));
    }

    if !violations.is_empty() {
        let mut msg = format!(
            "{} concurrency-discipline violation(s):\n",
            violations.len()
        );
        for v in &violations {
            let hint = RULES
                .iter()
                .find(|r| r.name == v.rule)
                .map_or("", |r| r.hint);
            let _ = writeln!(
                msg,
                "  {}:{} [{}] {}\n    -> {}",
                v.rel, v.line, v.rule, v.text, hint
            );
        }
        panic!("{msg}");
    }
}

// ---------------------------------------------------------------------------
// Seeded fixtures: the lint must catch each violation and accept its
// justified twin, so a silent regression in the scanner itself fails here.
// ---------------------------------------------------------------------------

#[test]
fn seeded_facade_bypass_is_caught() {
    let bad = r#"
use std::sync::atomic::{AtomicUsize, Ordering};

fn sneak(x: &AtomicUsize) -> usize {
    x.load(Ordering::Relaxed)
}
"#;
    let hits = scan("crates/skiphash/src/fixture.rs", bad);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "facade-bypass");
    assert_eq!(hits[0].line, 2);

    let waived = r#"
// FACADE-EXEMPT: fixture counter that synchronizes nothing.
use std::sync::atomic::{AtomicUsize, Ordering};
"#;
    assert!(scan("crates/skiphash/src/fixture.rs", waived).is_empty());

    // The facade itself and the model checker may name std atomics freely.
    assert!(scan("crates/stm/src/sync.rs", bad).is_empty());
    assert!(scan("crates/model/src/atomic.rs", bad).is_empty());
}

#[test]
fn seeded_unjustified_seqcst_is_caught() {
    let bad = r#"
fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
"#;
    let hits = scan("crates/stm/src/fixture.rs", bad);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "unjustified-seqcst");

    let justified = r#"
fn publish(flag: &AtomicBool) {
    // SC: the flag joins the registry's total order.
    flag.store(true, Ordering::SeqCst);
}
"#;
    assert!(scan("crates/stm/src/fixture.rs", justified).is_empty());

    // Naming SeqCst in a comment or a message string is not a use.
    let mentions = r#"
fn explain() {
    println!("never pass Ordering::SeqCst here");
}
// Ordering::SeqCst would be wrong in this module.
"#;
    assert!(scan("crates/stm/src/fixture.rs", mentions).is_empty());
}

#[test]
fn seeded_unsafe_impl_without_safety_is_caught() {
    let bad = r#"
struct Wrapper(*mut u8);
unsafe impl Send for Wrapper {}
"#;
    let hits = scan("tests/fixture.rs", bad);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].rule, "unsafe-impl");

    let justified = r#"
struct Wrapper(*mut u8);
// SAFETY: the pointer is only dereferenced behind the owner's lock.
unsafe impl Send for Wrapper {}
"#;
    assert!(scan("tests/fixture.rs", justified).is_empty());
}

#[test]
fn seeded_recovery_unwrap_is_caught() {
    let bad = r#"
fn stamp_of(bytes: &[u8]) -> u64 {
    let arr: [u8; 8] = bytes[..8].try_into().unwrap();
    u64::from_le_bytes(arr)
}
fn lock_len(entries: &Mutex<Vec<u64>>) -> usize {
    entries.lock().expect("poisoned").len()
}
"#;
    let hits = scan("crates/durability/src/fixture.rs", bad);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().all(|h| h.rule == "recovery-unwrap"));

    // Fallback combinators do not panic and must not trigger.
    let fallback = r#"
fn next_seq(last: Option<u64>) -> u64 {
    last.map(|s| s + 1).unwrap_or(1).max(last.unwrap_or_else(|| 0))
}
"#;
    assert!(scan("crates/durability/src/fixture.rs", fallback).is_empty());

    // A proven-unreachable panic passes with the marker.
    let justified = r#"
fn stamp_of(bytes: &[u8]) -> u64 {
    // PANIC-OK: caller verified the frame CRC, so 8 bytes are present.
    let arr: [u8; 8] = bytes[..8].try_into().unwrap();
    u64::from_le_bytes(arr)
}
"#;
    assert!(scan("crates/durability/src/fixture.rs", justified).is_empty());

    // Test modules inside durability sources may unwrap freely...
    let in_tests = "fn production() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n    \
                        fn t() { Some(1).unwrap(); }\n\
                    }\n";
    assert!(scan("crates/durability/src/fixture.rs", in_tests).is_empty());

    // ...and the rule only governs crates/durability/src.
    assert!(scan("crates/skiphash/src/fixture.rs", bad).is_empty());
    assert!(scan("crates/durability/tests/fixture.rs", bad).is_empty());
}

#[test]
fn justification_window_is_bounded() {
    // A marker more than WINDOW lines above must not count.
    let mut far = String::from("// SC: too far away to justify anything.\n");
    for _ in 0..WINDOW {
        far.push_str("fn filler() {}\n");
    }
    far.push_str("fn publish(flag: &AtomicBool) { flag.store(true, Ordering::SeqCst); }\n");
    let hits = scan("crates/stm/src/fixture.rs", &far);
    assert_eq!(hits.len(), 1, "{hits:?}");
}
