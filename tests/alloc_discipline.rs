//! Hot-path allocation discipline regression tests.
//!
//! The STM's steady-state commit path is supposed to be allocation-free:
//! transaction scratch is pooled per thread, the write log is unboxed, cell
//! payloads come from the recycling slab, and the epoch shim recycles its
//! sealed bags.  These tests install a counting global allocator and prove
//! it, so a future change that sneaks a `Box` or a fresh `Vec` back onto the
//! hot path fails CI instead of quietly regressing throughput.
//!
//! Everything runs in ONE `#[test]` so no concurrent test thread can
//! attribute its allocations to the measured windows.

use skiphash_stm::sync::{AtomicU64, Ordering};
use std::alloc::{GlobalAlloc, Layout, System};

use crossbeam_epoch as epoch;
use skiphash::SkipHash;
use skiphash_stm::{Stm, TCell};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `body` and return how many global-allocator hits it performed.
fn count_allocs(body: impl FnOnce()) -> u64 {
    let before = allocations();
    body();
    allocations() - before
}

#[test]
fn steady_state_hot_paths_do_not_touch_the_global_allocator() {
    // ---- 1. The canonical read-modify-write transaction: ZERO allocations.
    //
    // After warmup the scratch pool holds the transaction buffers, the slab
    // magazines hold enough payload blocks to cover the epoch's in-flight
    // window, and the epoch's bag pool covers the seal/collect cycle.
    let stm = Stm::new();
    let cell = TCell::new(0u64);
    let rmw = |stm: &Stm, cell: &TCell<u64>| {
        stm.run(|tx| {
            let v = cell.read(tx)?;
            cell.write(tx, v + 1)
        });
    };
    for _ in 0..20_000 {
        rmw(&stm, &cell);
    }
    // The epoch returns retired blocks in batches, so the measured window is
    // phase-sensitive; sample a few windows and require that the steady state
    // (every window after the first clean one) stays clean.
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..10_000 {
                rmw(&stm, &cell);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
    }
    assert!(
        zero_windows >= 2,
        "steady-state read-modify-write transactions must be allocation-free \
         (allocations per 10k-txn window: {measured:?})"
    );
    assert!(
        stm.stats().slab_recycle_hits > 0,
        "the slab must be serving the write path"
    );
    assert!(
        stm.stats().validation_skipped_commits > 0,
        "the sampled clock's no-validation fast path must be firing"
    );

    // ---- 2. Write-only transactions over several cells: still zero.
    let cells: Vec<TCell<u64>> = (0..8).map(TCell::new).collect();
    let write8 = |stm: &Stm, cells: &[TCell<u64>]| {
        stm.run(|tx| {
            for cell in cells {
                cell.write(tx, 7)?;
            }
            Ok(())
        });
    };
    for _ in 0..20_000 {
        write8(&stm, &cells);
    }
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..5_000 {
                write8(&stm, &cells);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
    }
    assert!(
        zero_windows >= 2,
        "steady-state multi-cell write transactions must be allocation-free \
         (allocations per 5k-txn window: {measured:?})"
    );

    // ---- 3. End-to-end skip hash insert/remove churn: ZERO allocations.
    //
    // Until the structure arena existed, a fresh key inherently allocated its
    // node structure (an `Arc<Node>`, a boxed tower slice, hash-chain `Vec`
    // clones) and this section could only bound the damage (≤16 hits/pair).
    // Now node blocks — refcount, header, and the tower inline — are
    // height-classed arena blocks recycled through the epoch, and the hash
    // map's copy-on-write chains clone through pooled buffers, so a
    // steady-state insert/remove pair must not touch the global allocator at
    // all.
    //
    // Windows are assessed like the RMW section: tower heights are sampled
    // geometrically, so a rare tall-tower *size class* may see its very first
    // allocation inside a measured window (a once-ever event per class, not a
    // leak).  Requiring 2 of 3 windows to be exactly zero admits that one-off
    // while still failing on any per-pair allocation that grows back.
    // Steady state is defined by warm pools, so warm them deterministically
    // (a production service does the same at startup):
    //
    // * tower heights are sampled geometrically at run time, so cycle blocks
    //   of every height class through the epoch once — otherwise a rare tall
    //   tower's *first-ever* block can legitimately mint mid-measurement;
    // * the link/counter payload class (the slab's smallest) carries a
    //   standing in-flight population of a couple thousand blocks whose size
    //   fluctuates with the height distribution, so give it headroom up
    //   front instead of letting the high-water mark be discovered by
    //   minting.
    for height in 1..=20 {
        let nodes: Vec<_> = (0..32)
            .map(|i| skiphash::node::Node::<u64, u64>::new(i, 0, height, 0, 0))
            .collect();
        drop(nodes);
    }
    for _ in 0..64 * 64 {
        drop(epoch::pin());
    }
    let payload_headroom: Vec<TCell<u64>> = (0..16_384).map(TCell::new).collect();
    drop(payload_headroom);

    let map: SkipHash<u64, u64> = SkipHash::new();
    for key in 0..1_024u64 {
        map.insert(key, key);
    }
    let churn = |map: &SkipHash<u64, u64>| {
        map.insert(4_096, 1);
        map.remove(&4_096);
    };
    for _ in 0..8_000 {
        churn(&map);
    }
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..2_000 {
                churn(&map);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
    }
    assert!(
        zero_windows >= 2,
        "steady-state skip-hash insert/remove churn must be allocation-free \
         (allocations per 2k-pair window: {measured:?})"
    );
    let stats = map.stm_stats();
    assert!(
        stats.node_recycle_hits > 0,
        "the arena must be serving node blocks from recycled memory"
    );
    assert!(
        stats.chain_recycle_hits > 0,
        "the arena must be serving hash-chain buffers from recycled memory"
    );

    // ---- 4. Pinned snapshot reads: ZERO allocations.
    //
    // A pinned read resolves each cell either against its current payload
    // (a validated in-place borrow) or against the history side table (a
    // lookup under a shard lock) — neither path clones into fresh heap
    // memory for `Copy` values, and no transaction machinery is involved at
    // all.  Churn *between* the measured windows keeps displacing payloads
    // the snapshot needs, so the windows exercise the history path (the
    // commit side pays the preservation cost, outside the windows), and the
    // population sum below always resolves post-pin shard bumps through it.
    let snap = map.snapshot();
    for _ in 0..500 {
        churn(&map);
    }
    let pinned_reads = |snap: &skiphash::Snapshot<u64, u64>| {
        assert_eq!(snap.get(&7), Some(7));
        assert_eq!(snap.get(&4_096), None);
        assert_eq!(snap.len(), 1_024);
    };
    for _ in 0..4_000 {
        pinned_reads(&snap);
    }
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..2_000 {
                pinned_reads(&snap);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
        for _ in 0..200 {
            churn(&map);
        }
    }
    assert!(
        zero_windows >= 2,
        "pinned snapshot reads must be allocation-free \
         (allocations per 2k-read window: {measured:?})"
    );
    drop(snap);
}
