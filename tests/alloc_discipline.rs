//! Hot-path allocation discipline regression tests.
//!
//! The STM's steady-state commit path is supposed to be allocation-free:
//! transaction scratch is pooled per thread, the write log is unboxed, cell
//! payloads come from the recycling slab, and the epoch shim recycles its
//! sealed bags.  These tests install a counting global allocator and prove
//! it, so a future change that sneaks a `Box` or a fresh `Vec` back onto the
//! hot path fails CI instead of quietly regressing throughput.
//!
//! Everything runs in ONE `#[test]` so no concurrent test thread can
//! attribute its allocations to the measured windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skiphash::SkipHash;
use skiphash_stm::{Stm, TCell};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter has no side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Run `body` and return how many global-allocator hits it performed.
fn count_allocs(body: impl FnOnce()) -> u64 {
    let before = allocations();
    body();
    allocations() - before
}

#[test]
fn steady_state_hot_paths_do_not_touch_the_global_allocator() {
    // ---- 1. The canonical read-modify-write transaction: ZERO allocations.
    //
    // After warmup the scratch pool holds the transaction buffers, the slab
    // magazines hold enough payload blocks to cover the epoch's in-flight
    // window, and the epoch's bag pool covers the seal/collect cycle.
    let stm = Stm::new();
    let cell = TCell::new(0u64);
    let rmw = |stm: &Stm, cell: &TCell<u64>| {
        stm.run(|tx| {
            let v = cell.read(tx)?;
            cell.write(tx, v + 1)
        });
    };
    for _ in 0..20_000 {
        rmw(&stm, &cell);
    }
    // The epoch returns retired blocks in batches, so the measured window is
    // phase-sensitive; sample a few windows and require that the steady state
    // (every window after the first clean one) stays clean.
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..10_000 {
                rmw(&stm, &cell);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
    }
    assert!(
        zero_windows >= 2,
        "steady-state read-modify-write transactions must be allocation-free \
         (allocations per 10k-txn window: {measured:?})"
    );
    assert!(
        stm.stats().slab_recycle_hits > 0,
        "the slab must be serving the write path"
    );
    assert!(
        stm.stats().validation_skipped_commits > 0,
        "the sampled clock's no-validation fast path must be firing"
    );

    // ---- 2. Write-only transactions over several cells: still zero.
    let cells: Vec<TCell<u64>> = (0..8).map(TCell::new).collect();
    let write8 = |stm: &Stm, cells: &[TCell<u64>]| {
        stm.run(|tx| {
            for cell in cells {
                cell.write(tx, 7)?;
            }
            Ok(())
        });
    };
    for _ in 0..20_000 {
        write8(&stm, &cells);
    }
    let mut zero_windows = 0;
    let mut measured = Vec::new();
    for _ in 0..3 {
        let allocs = count_allocs(|| {
            for _ in 0..5_000 {
                write8(&stm, &cells);
            }
        });
        measured.push(allocs);
        zero_windows += u64::from(allocs == 0);
    }
    assert!(
        zero_windows >= 2,
        "steady-state multi-cell write transactions must be allocation-free \
         (allocations per 5k-txn window: {measured:?})"
    );

    // ---- 3. End-to-end skip hash insert/remove churn: bounded.
    //
    // A fresh key inherently allocates its node (the `Arc<Node>`, the tower,
    // the hash-chain vectors); what the slab and scratch pool eliminated is
    // the per-*write* allocation tail — the seed paid two boxes per written
    // cell plus fresh transaction buffers per attempt, ~40+ hits per
    // insert/remove pair.  Assert the remaining structural cost stays small
    // so the tail cannot quietly grow back.
    let map: SkipHash<u64, u64> = SkipHash::new();
    for key in 0..1_024u64 {
        map.insert(key, key);
    }
    let churn = |map: &SkipHash<u64, u64>| {
        map.insert(4_096, 1);
        map.remove(&4_096);
    };
    for _ in 0..5_000 {
        churn(&map);
    }
    let pairs = 2_000u64;
    let allocs = count_allocs(|| {
        for _ in 0..pairs {
            churn(&map);
        }
    });
    let per_pair = allocs as f64 / pairs as f64;
    assert!(
        per_pair <= 16.0,
        "steady-state insert/remove pair averaged {per_pair:.1} allocations \
         ({allocs} over {pairs} pairs); the commit path must stay allocation-free \
         with only node construction left"
    );
}
