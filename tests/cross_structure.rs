//! Cross-structure agreement: the skip hash and every baseline, driven with
//! the same deterministic operation sequence, must end up with identical
//! contents and answer identical range queries.  This is the integration-level
//! check that the benchmark comparisons in Figures 5 and 6 are comparing maps
//! that implement the same abstract data type.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash_repro::harness::{BenchMap, MapKind};

fn drive(map: &Arc<dyn BenchMap>, seed: u64, operations: usize) -> Vec<(u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..operations {
        let key = rng.gen_range(0..2_000u64);
        match rng.gen_range(0..3) {
            0 => {
                map.insert(key, key * 3);
            }
            1 => {
                map.remove(key);
            }
            _ => {
                map.get(key);
            }
        }
    }
    let mut buffer = Vec::new();
    let everything = (
        std::ops::Bound::Included(0),
        std::ops::Bound::Included(u64::MAX - 1),
    );
    match map.range(everything, &mut buffer) {
        Some(_) => buffer,
        None => Vec::new(),
    }
}

#[test]
fn all_maps_agree_after_identical_histories() {
    const SEED: u64 = 0xD15EA5E;
    const OPERATIONS: usize = 4_000;

    // The skip hash (two-path) is the reference.
    let reference_map = MapKind::SkipHashTwoPath.build(2_000);
    let reference = drive(&reference_map, SEED, OPERATIONS);
    assert!(!reference.is_empty());

    for kind in MapKind::all() {
        let map = kind.build(2_000);
        let contents = drive(&map, SEED, OPERATIONS);
        // Population must match for every map; full contents must match for
        // the range-capable ones (the STM-only maps cannot be snapshotted).
        assert_eq!(
            map.population(),
            reference_map.population(),
            "population mismatch for {kind}"
        );
        if map.supports_range() {
            assert_eq!(contents, reference, "contents mismatch for {kind}");
        }
    }
}

#[test]
fn range_results_agree_between_skiphash_policies_and_baselines() {
    const SEED: u64 = 77;
    let kinds = MapKind::range_capable();
    let maps: Vec<Arc<dyn BenchMap>> = kinds.iter().map(|k| k.build(4_000)).collect();

    // Apply the same mixed history everywhere.
    let mut rng = SmallRng::seed_from_u64(SEED);
    for _ in 0..3_000 {
        let key = rng.gen_range(0..4_000u64);
        let insert = rng.gen::<bool>();
        for map in &maps {
            if insert {
                map.insert(key, key + 1);
            } else {
                map.remove(key);
            }
        }
    }

    // Same range queries, same answers.
    let mut query_rng = SmallRng::seed_from_u64(SEED + 1);
    for _ in 0..50 {
        let low = query_rng.gen_range(0..4_000u64);
        let high = low + query_rng.gen_range(0..512u64);
        let mut expected: Option<Vec<(u64, u64)>> = None;
        for (kind, map) in kinds.iter().zip(&maps) {
            let mut buffer = Vec::new();
            let bounds = (
                std::ops::Bound::Included(low),
                std::ops::Bound::Included(high),
            );
            map.range(bounds, &mut buffer).expect("range-capable");
            match &expected {
                None => expected = Some(buffer),
                Some(reference) => {
                    assert_eq!(
                        &buffer, reference,
                        "range [{low},{high}] differs for {kind}"
                    )
                }
            }
        }
    }
}
