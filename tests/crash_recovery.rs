//! SIGKILL crash campaign for the durability layer.
//!
//! The parent test re-spawns this test binary as a child (selecting the
//! `crash_child` test by name, activated through environment variables),
//! lets it hammer a [`DurableMap`] on the real file system, and SIGKILLs
//! it at a seed-chosen moment — mid-commit, mid-checkpoint, or
//! mid-truncation depending on the mode.  Each (mode, seed) cell runs two
//! kill rounds against the same directory, so recovery itself is also
//! crashed into.
//!
//! ## The contract being verified
//!
//! The child acknowledges an operation only after `DurableMap::sync`
//! returns `Ok` for it, recording `key value` in a per-thread ack file.
//! Values per key increase by one per commit, so after the kill:
//!
//! 1. **Recovery never panics or errors** — a SIGKILL at any point leaves
//!    a directory `DurableMap::open` accepts.
//! 2. **Acknowledged writes survive**: for every acked `(k, v)`, the
//!    recovered value of `k` is `>= v` (later, unacknowledged commits may
//!    legitimately have reached disk too — but never fewer).
//! 3. **The recovered state is exactly what the bytes say**: an
//!    independent oracle in this file re-parses the checkpoint images and
//!    WAL segments with the public format APIs and replays them; the map
//!    `open` builds must match it entry for entry.
//! 4. **Recovery is idempotent**: a second open of the same directory
//!    yields the same entries.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use skiphash_repro::durability::checkpoint::{decode_checkpoint, parse_checkpoint_name};
use skiphash_repro::durability::wal::{
    decode_record, parse_segment_header, parse_segment_name, FrameIter, Op,
};
use skiphash_repro::durability::{DurableMapBuilder, WalConfig};

const ROLE_ENV: &str = "SKH_CRASH_ROLE";
const DIR_ENV: &str = "SKH_CRASH_DIR";
const MODE_ENV: &str = "SKH_CRASH_MODE";

const WRITER_THREADS: u64 = 3;
const KEYS_PER_THREAD: u64 = 8;

fn wal_config(mode: &str) -> WalConfig {
    WalConfig {
        flush_interval: Duration::from_millis(1),
        // Truncation mode: tiny segments force constant rotation, so the
        // kill lands inside rotation/truncation windows too.
        segment_max_bytes: if mode == "truncate" {
            2 << 10
        } else {
            32 << 20
        },
        ..WalConfig::default()
    }
}

fn open_map(dir: &Path, mode: &str) -> std::io::Result<skiphash_repro::DurableMap<u64, u64>> {
    let mut builder = DurableMapBuilder::new(dir).wal_config(wal_config(mode));
    if mode == "checkpoint" || mode == "truncate" {
        builder = builder.checkpoint_every_ops(32);
    }
    builder.open()
}

/// The child half: spin durable writers until SIGKILLed.  A plain `#[test]`
/// so the parent can select it by name; without the env activation it is
/// an immediate no-op pass.
#[test]
fn crash_child() {
    if std::env::var(ROLE_ENV).as_deref() != Ok("child") {
        return;
    }
    let dir = PathBuf::from(std::env::var(DIR_ENV).expect("child needs a directory"));
    let mode = std::env::var(MODE_ENV).expect("child needs a mode");
    let map = std::sync::Arc::new(open_map(&dir, &mode).expect("child open"));

    if mode == "checkpoint" || mode == "truncate" {
        // A dedicated checkpointer keeps a checkpoint (and, with tiny
        // segments, a truncation) perpetually in flight for the kill to
        // land inside.
        let map = std::sync::Arc::clone(&map);
        std::thread::spawn(move || loop {
            let _ = map.checkpoint();
            std::thread::sleep(Duration::from_millis(2));
        });
    }

    let mut workers = Vec::new();
    for t in 0..WRITER_THREADS {
        let map = std::sync::Arc::clone(&map);
        let ack_path = dir.join(format!("acks-{t}.txt"));
        workers.push(std::thread::spawn(move || {
            let mut acks = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&ack_path)
                .expect("child ack file");
            // A kill can land between `writeln!`'s fragment writes, leaving
            // a torn line with no newline ("16" from "16 17\n").  If the
            // next lifetime appended straight onto it, the two would merge
            // into a well-formed line with a phantom key ("1616 9").  Start
            // every lifetime by terminating whatever the last one tore, and
            // emit each ack as a single write so a tear stays on one line.
            if acks.write_all(b"\n").is_err() {
                return;
            }
            // Resume per-key counters from the recovered state: round two
            // of the campaign continues where the first kill left off.
            let keys: Vec<u64> = (t * KEYS_PER_THREAD..(t + 1) * KEYS_PER_THREAD).collect();
            let mut next: BTreeMap<u64, u64> = keys
                .iter()
                .map(|&k| (k, map.get(&k).unwrap_or(0) + 1))
                .collect();
            loop {
                for &k in &keys {
                    let v = next[&k];
                    if map.upsert_durable(k, v).is_err() {
                        return; // log poisoned; stop acking
                    }
                    // Only now — after the durability barrier — is the
                    // write acknowledged.
                    let line = format!("{k} {v}\n");
                    if acks.write_all(line.as_bytes()).is_err() || acks.sync_data().is_err() {
                        return;
                    }
                    *next.get_mut(&k).expect("owned key") = v + 1;
                }
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Read every ack file in `dir`, keeping the last acknowledged value per
/// key.  The final line may be torn by the kill; malformed lines are
/// skipped.  (A torn numeric prefix like "16 1" of "16 17\n" still parses,
/// but only weakens the dominance check — values on a key only grow, so a
/// truncated value is always a smaller, already-durable one.)
fn read_acks(dir: &Path) -> BTreeMap<u64, u64> {
    let mut acked = BTreeMap::new();
    for t in 0..WRITER_THREADS {
        let Ok(text) = std::fs::read_to_string(dir.join(format!("acks-{t}.txt"))) else {
            continue;
        };
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            if let (Some(Ok(k)), Some(Ok(v))) = (
                parts.next().map(str::parse::<u64>),
                parts.next().map(str::parse::<u64>),
            ) {
                acked.insert(k, v);
            }
        }
    }
    acked
}

/// Independent replay oracle: re-parse the directory with the public
/// format APIs (not `recover`) and rebuild the expected entries.
fn oracle_replay(dir: &Path) -> Vec<(u64, u64)> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("oracle read_dir")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();

    // Newest checkpoint image that validates.
    let mut state: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ckpt_version = 0u64;
    let mut ckpts: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_checkpoint_name(n))
        .collect();
    ckpts.sort_unstable();
    for &at in ckpts.iter().rev() {
        let bytes =
            std::fs::read(dir.join(skiphash_repro::durability::checkpoint::checkpoint_name(at)))
                .expect("oracle checkpoint read");
        if let Some((version, entries)) = decode_checkpoint::<u64, u64>(&bytes) {
            ckpt_version = version;
            state = entries.into_iter().collect();
            break;
        }
    }

    // Surviving WAL records: segments in order.  Damage in the last
    // segment ends the scan (torn tail); damage in an earlier one is a
    // scar from an older crash — its readable prefix counts and later
    // segments (written by later process lifetimes) still apply.  This
    // mirrors the recovery contract exactly.
    let mut seqs: Vec<u64> = names.iter().filter_map(|n| parse_segment_name(n)).collect();
    seqs.sort_unstable();
    let last_seq = seqs.last().copied();
    let mut records: Vec<(u64, Vec<Op<u64, u64>>)> = Vec::new();
    for &seq in &seqs {
        let bytes = std::fs::read(dir.join(skiphash_repro::durability::wal::segment_name(seq)))
            .expect("oracle segment read");
        let mut damaged = false;
        match parse_segment_header(&bytes) {
            Some((header_seq, body)) if header_seq == seq => {
                let mut frames = FrameIter::new(body);
                for payload in &mut frames {
                    match decode_record::<u64, u64>(payload) {
                        Some(record) => records.push(record),
                        None => {
                            damaged = true;
                            break;
                        }
                    }
                }
                damaged |= frames.truncated();
            }
            _ => damaged = true,
        }
        if damaged && Some(seq) == last_seq {
            break;
        }
    }
    records.sort_by_key(|(stamp, _)| *stamp);
    let mut last = ckpt_version;
    for (stamp, ops) in records {
        if stamp <= last {
            continue;
        }
        last = stamp;
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    state.insert(k, v);
                }
                Op::Remove(k) => {
                    state.remove(&k);
                }
            }
        }
    }
    state.into_iter().collect()
}

/// Forensic helper: dump a campaign directory's checkpoint + WAL records.
/// Run by hand: `SKH_DUMP_DIR=/tmp/... cargo test --test crash_recovery -- --ignored forensic_dump --nocapture`
#[test]
#[ignore]
fn forensic_dump() {
    let Ok(dir) = std::env::var("SKH_DUMP_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("read_dir")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in &names {
        let bytes = std::fs::read(dir.join(name)).unwrap();
        if let Some(at) = parse_checkpoint_name(name) {
            match decode_checkpoint::<u64, u64>(&bytes) {
                Some((version, entries)) => {
                    let k15: Vec<_> = entries.iter().filter(|(k, _)| *k == 15).collect();
                    println!(
                        "{name}: VALID at={version} ({at}) entries={} k15={k15:?}",
                        entries.len()
                    );
                }
                None => println!("{name}: INVALID image, {} bytes", bytes.len()),
            }
        } else if let Some(seq) = parse_segment_name(name) {
            match parse_segment_header(&bytes) {
                Some((hseq, body)) => {
                    let mut frames = FrameIter::new(body);
                    let mut n = 0;
                    let mut min_s = u64::MAX;
                    let mut max_s = 0;
                    let mut k15 = Vec::new();
                    for payload in &mut frames {
                        match decode_record::<u64, u64>(payload) {
                            Some((stamp, ops)) => {
                                n += 1;
                                min_s = min_s.min(stamp);
                                max_s = max_s.max(stamp);
                                for op in &ops {
                                    if matches!(op, Op::Put(15, _) | Op::Remove(15)) {
                                        k15.push((stamp, op.clone()));
                                    }
                                }
                            }
                            None => println!("  {name}: undecodable CRC-valid frame"),
                        }
                    }
                    println!(
                        "{name}: seq={hseq} ({seq}) frames={n} stamps=[{min_s},{max_s}] torn={} k15={k15:?}",
                        frames.truncated()
                    );
                }
                None => println!("{name}: DAMAGED header, {} bytes", bytes.len()),
            }
        } else {
            println!("{name}: {} bytes", bytes.len());
        }
    }
}

fn run_one_round(dir: &Path, mode: &str, sleep_ms: u64) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "crash_child", "--test-threads=1", "--nocapture"])
        .env(ROLE_ENV, "child")
        .env(DIR_ENV, dir)
        .env(MODE_ENV, mode)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn crash child");
    std::thread::sleep(Duration::from_millis(sleep_ms));
    child.kill().expect("SIGKILL child"); // SIGKILL on unix: no cleanup runs
    child.wait().expect("reap child");
}

fn verify_after_kill(dir: &Path, mode: &str, cell: &str) -> (usize, u64) {
    let acked = read_acks(dir);
    let expected = oracle_replay(dir);

    // 1. Recovery accepts whatever the kill left behind.
    let map = open_map(dir, mode).unwrap_or_else(|e| panic!("{cell}: recovery must not fail: {e}"));
    let recovered: BTreeMap<u64, u64> = map.to_vec().into_iter().collect();
    let info = map.recovery_info();

    // 2. Every acknowledged write survived (possibly superseded by a
    //    later commit on the same key — values only grow).
    for (&k, &v) in &acked {
        let got = recovered
            .get(&k)
            .copied()
            .unwrap_or_else(|| panic!("{cell}: acked key {k} (value {v}) missing after recovery"));
        assert!(
            got >= v,
            "{cell}: key {k} recovered {got}, older than acknowledged {v}"
        );
    }

    // 3. The recovered map equals the independent byte-level oracle.
    let recovered_vec: Vec<(u64, u64)> = recovered.into_iter().collect();
    assert_eq!(
        recovered_vec, expected,
        "{cell}: recovered map diverges from the format oracle"
    );

    // 4. Idempotence: opening again recovers the same state.  (The first
    //    open started a fresh empty segment; replaying it is a no-op.)
    drop(map);
    let again = open_map(dir, mode)
        .unwrap_or_else(|e| panic!("{cell}: second recovery must not fail: {e}"));
    assert_eq!(
        again.to_vec(),
        recovered_vec,
        "{cell}: second recovery disagrees with the first"
    );

    (acked.len(), info.records_replayed)
}

#[test]
fn kill_campaign_recovers_every_acknowledged_commit() {
    let base = std::env::temp_dir().join(format!("skh-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut total_acked = 0usize;
    let mut total_replayed = 0u64;

    // CI's crash-recovery matrix widens coverage by running the campaign
    // once per seed set; locally the default set keeps one run short.
    let seeds: Vec<u64> = match std::env::var("SKH_CRASH_SEEDS") {
        Ok(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("SKH_CRASH_SEEDS: comma-separated integers")
            })
            .collect(),
        Err(_) => vec![11, 29, 47],
    };

    for mode in ["commit", "checkpoint", "truncate"] {
        for &seed in &seeds {
            let dir = base.join(format!("{mode}-{seed}"));
            std::fs::create_dir_all(&dir).expect("campaign dir");
            // Two rounds per cell: the second child recovers the first
            // kill's directory and is then killed itself.
            for round in 0..2u64 {
                let sleep_ms = 40 + (seed * 37 + round * 53) % 140;
                run_one_round(&dir, mode, sleep_ms);
                let cell = format!("mode={mode} seed={seed} round={round}");
                let (acks, replayed) = verify_after_kill(&dir, mode, &cell);
                total_acked += acks;
                total_replayed += replayed;
            }
        }
    }

    // The campaign must have actually exercised the machinery: across all
    // kills (two per mode x seed cell), some operations were acknowledged
    // and some WAL records replayed.  (Any single cell may legitimately
    // die too early.)
    assert!(total_acked > 0, "no operation was ever acknowledged");
    assert!(total_replayed > 0, "recovery never replayed a WAL record");
    let _ = std::fs::remove_dir_all(&base);
}
