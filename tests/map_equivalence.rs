//! Randomized equivalence tests: every evaluated map must behave exactly
//! like `std::collections::BTreeMap` under arbitrary operation sequences
//! (sequential, so the reference semantics are unambiguous).
//!
//! Operation sequences are generated from a seeded [`SmallRng`], so every
//! case is deterministic and a failure reports the seed that produced it
//! (originally written against `proptest`, which is not available in this
//! offline build environment).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash_repro::baselines::skiplist::{BundledSkipList, VcasSkipList};
use skiphash_repro::baselines::stm_maps::{StmHashMap, StmSkipListMap};
use skiphash_repro::baselines::timestamp::TimestampMode;
use skiphash_repro::baselines::VcasBst;
use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::{RangePolicy, SkipHash};

const CASES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
    /// `range_rev` (descending borrowed back-walk) plus the `Copy`-key
    /// copy-out variants of both scan directions over the same bounds.
    RangeRev(u16, u16),
    /// Full scans: `to_vec` and `to_vec_copied` against the whole model.
    ToVec,
    Ceil(u16),
    Floor(u16),
    Succ(u16),
    Pred(u16),
    /// Pin a snapshot and checkpoint the reference model alongside it.
    Snapshot,
    /// `get` on every live snapshot, checked against its checkpoint.
    SnapshotGet(u16),
    /// `range` on every live snapshot, checked against its checkpoint.
    SnapshotRange(u16, u16),
    /// Drop the oldest live snapshot (releasing its version custody).
    DropSnapshot,
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..14u32) {
        0 => Op::Insert(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>()),
        1 => Op::Remove(rng.gen::<u32>() as u16 % 512),
        2 => Op::Get(rng.gen::<u32>() as u16 % 512),
        3 => Op::Range(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>() as u16 % 64),
        4 => Op::RangeRev(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>() as u16 % 64),
        5 => Op::ToVec,
        6 => Op::Ceil(rng.gen::<u32>() as u16 % 512),
        7 => Op::Floor(rng.gen::<u32>() as u16 % 512),
        8 => Op::Succ(rng.gen::<u32>() as u16 % 512),
        9 => Op::Pred(rng.gen::<u32>() as u16 % 512),
        10 => Op::Snapshot,
        11 => Op::SnapshotGet(rng.gen::<u32>() as u16 % 512),
        12 => Op::SnapshotRange(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>() as u16 % 64),
        _ => Op::DropSnapshot,
    }
}

/// Run `check` on `CASES` random operation sequences of length `1..max_len`,
/// reporting the failing seed on panic.
fn for_each_case(max_len: usize, check: impl Fn(&[Op])) {
    for case in 0..CASES {
        let seed = 0xE9_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(1..max_len);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&ops)));
        if let Err(payload) = result {
            eprintln!("equivalence case failed for seed {seed} ({len} ops)");
            std::panic::resume_unwind(payload);
        }
    }
}

fn skiphash_with(policy: RangePolicy) -> SkipHash<u64, u64> {
    SkipHashBuilder::new()
        .buckets(257)
        .max_level(10)
        .range_policy(policy)
        .build()
}

fn check_skiphash_against_btreemap(policy: RangePolicy, ops: &[Op]) {
    let map = skiphash_with(policy);
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    // The versioned reference model: each live snapshot paired with the
    // checkpoint of the reference taken at its pin.  Every snapshot query
    // must replay to its checkpoint no matter how far the live map has
    // moved on since.
    let mut snapshots: Vec<(
        skiphash_repro::skiphash::Snapshot<u64, u64>,
        BTreeMap<u64, u64>,
    )> = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let k = k as u64;
                let v = v as u64;
                let expected = !reference.contains_key(&k);
                if expected {
                    reference.insert(k, v);
                }
                assert_eq!(map.insert(k, v), expected, "insert({k})");
            }
            Op::Remove(k) => {
                let k = k as u64;
                let expected = reference.remove(&k).is_some();
                assert_eq!(map.remove(&k), expected, "remove({k})");
            }
            Op::Get(k) => {
                let k = k as u64;
                assert_eq!(map.get(&k), reference.get(&k).copied(), "get({k})");
            }
            Op::Range(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                let expected: Vec<(u64, u64)> =
                    reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(
                    map.range(low..=high).collect::<Vec<_>>(),
                    expected,
                    "range({low},{high})"
                );
            }
            Op::RangeRev(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                let expected_rev: Vec<(u64, u64)> = reference
                    .range(low..=high)
                    .rev()
                    .map(|(k, v)| (*k, *v))
                    .collect();
                assert_eq!(
                    map.range_rev(low..=high).collect::<Vec<_>>(),
                    expected_rev,
                    "range_rev({low},{high})"
                );
                // The copy-out specializations must agree with the cloning
                // paths in both directions (u64 is Copy).
                assert_eq!(
                    map.range_rev_copied(low..=high).collect::<Vec<_>>(),
                    expected_rev,
                    "range_rev_copied({low},{high})"
                );
                let expected_fwd: Vec<(u64, u64)> =
                    reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(
                    map.range_copied(low..=high).collect::<Vec<_>>(),
                    expected_fwd,
                    "range_copied({low},{high})"
                );
            }
            Op::ToVec => {
                let all: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
                assert_eq!(map.to_vec(), all, "to_vec");
                assert_eq!(map.to_vec_copied(), all, "to_vec_copied");
            }
            Op::Ceil(k) => {
                let k = k as u64;
                let expected = reference.range(k..).next().map(|(k, _)| *k);
                assert_eq!(map.ceil(&k), expected, "ceil({k})");
            }
            Op::Floor(k) => {
                let k = k as u64;
                let expected = reference.range(..=k).next_back().map(|(k, _)| *k);
                assert_eq!(map.floor(&k), expected, "floor({k})");
            }
            Op::Succ(k) => {
                let k = k as u64;
                let expected = reference.range(k + 1..).next().map(|(k, _)| *k);
                assert_eq!(map.succ(&k), expected, "succ({k})");
            }
            Op::Pred(k) => {
                let k = k as u64;
                let expected = reference.range(..k).next_back().map(|(k, _)| *k);
                assert_eq!(map.pred(&k), expected, "pred({k})");
            }
            Op::Snapshot => {
                let snap = map.snapshot();
                assert_eq!(snap.len(), reference.len(), "len at the pin");
                snapshots.push((snap, reference.clone()));
            }
            Op::SnapshotGet(k) => {
                let k = k as u64;
                for (i, (snap, model)) in snapshots.iter().enumerate() {
                    assert_eq!(
                        snap.get(&k),
                        model.get(&k).copied(),
                        "snapshot {i} get({k})"
                    );
                }
            }
            Op::SnapshotRange(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                for (i, (snap, model)) in snapshots.iter().enumerate() {
                    let expected: Vec<(u64, u64)> =
                        model.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(
                        snap.range(low..=high).collect::<Vec<_>>(),
                        expected,
                        "snapshot {i} range({low},{high})"
                    );
                    assert_eq!(
                        snap.range_copied(low..=high).collect::<Vec<_>>(),
                        expected,
                        "snapshot {i} range_copied({low},{high})"
                    );
                }
            }
            Op::DropSnapshot => {
                if !snapshots.is_empty() {
                    snapshots.remove(0);
                }
            }
        }
    }
    // Surviving snapshots replay to their checkpoints in full before they
    // release custody.
    for (i, (snap, model)) in snapshots.iter().enumerate() {
        assert_eq!(snap.len(), model.len(), "snapshot {i} final len");
        let all: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(snap.to_vec(), all, "snapshot {i} final scan");
    }
    drop(snapshots);
    assert_eq!(map.len(), reference.len());
    let all: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(map.to_vec(), all);
    map.check_invariants().expect("internal invariants");
}

/// Replay `ops` against a baseline map exposing get/insert/remove/range and
/// compare with `BTreeMap` (point queries are not part of the baseline
/// interface and are skipped).
fn check_baseline_against_btreemap(
    ops: &[Op],
    insert: impl Fn(u64, u64) -> bool,
    remove: impl Fn(u64) -> bool,
    get: impl Fn(u64) -> Option<u64>,
    range: impl Fn(u64, u64) -> Vec<(u64, u64)>,
    len: impl Fn() -> usize,
) {
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                let expected = !reference.contains_key(&k);
                if expected {
                    reference.insert(k, v);
                }
                assert_eq!(insert(k, v), expected, "insert({k})");
            }
            Op::Remove(k) => {
                let k = k as u64;
                assert_eq!(remove(k), reference.remove(&k).is_some(), "remove({k})");
            }
            Op::Get(k) => {
                let k = k as u64;
                assert_eq!(get(k), reference.get(&k).copied(), "get({k})");
            }
            Op::Range(low, rlen) => {
                let (low, high) = (low as u64, low as u64 + rlen as u64);
                let expected: Vec<(u64, u64)> =
                    reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(range(low, high), expected, "range({low},{high})");
            }
            _ => {}
        }
    }
    assert_eq!(len(), reference.len());
}

#[test]
fn skiphash_two_path_matches_btreemap() {
    for_each_case(120, |ops| {
        check_skiphash_against_btreemap(RangePolicy::TwoPath { tries: 3 }, ops);
    });
}

#[test]
fn skiphash_fast_only_matches_btreemap() {
    for_each_case(120, |ops| {
        check_skiphash_against_btreemap(RangePolicy::FastOnly, ops);
    });
}

#[test]
fn skiphash_slow_only_matches_btreemap() {
    for_each_case(80, |ops| {
        check_skiphash_against_btreemap(RangePolicy::SlowOnly, ops);
    });
}

/// The borrowed-hop scan loops (forward fast path, RQC custody slow path,
/// the `range_rev` back-walk, full `to_vec` scans, and the `Copy`-key
/// copy-out variants) under concurrent insert/remove churn.
///
/// Under churn there is no single reference sequence, but every scan runs
/// at one consistent version (fast path: one transaction; slow path: one
/// RQC-registered version), so three invariants must hold for every result:
/// strict key ordering (ascending forward, descending reverse), the value
/// law `v == k * 10` that every writer maintains, and the presence of every
/// never-touched "stable" key inside the bounds.  After the writers join,
/// all paths must agree exactly.
#[test]
fn scan_paths_stay_coherent_under_concurrent_churn() {
    // FACADE-EXEMPT: test-only stop flag; this integration test runs real
    // threads outside the model checker, so there is nothing to instrument.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const STABLE_STEP: u64 = 4; // keys 0, 4, 8, ... are never touched
    const UNIVERSE: u64 = 400;
    const LOW: u64 = 50;
    const HIGH: u64 = 350;
    let scans: usize = if cfg!(debug_assertions) { 40 } else { 150 };

    for policy in [
        RangePolicy::FastOnly,
        RangePolicy::SlowOnly,
        RangePolicy::TwoPath { tries: 3 },
    ] {
        let map = Arc::new(skiphash_with(policy));
        for k in (0..UNIVERSE).step_by(STABLE_STEP as usize) {
            assert!(map.insert(k, k * 10));
        }
        let stable_in_bounds: Vec<u64> = (0..UNIVERSE)
            .step_by(STABLE_STEP as usize)
            .filter(|k| (LOW..HIGH).contains(k))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xC0_0000 + w);
                    while !stop.load(Ordering::Relaxed) {
                        // Odd keys only: writer w churns keys ≡ 2w+1 mod 4,
                        // so writers never collide with stable keys or each
                        // other, and the value law always holds.
                        let k = rng.gen_range(0..UNIVERSE / 4) * 4 + 2 * w + 1;
                        if !map.insert(k, k * 10) {
                            map.remove(&k);
                        }
                    }
                })
            })
            .collect();

        let check = |pairs: &[(u64, u64)], descending: bool, label: &str| {
            for pair in pairs.windows(2) {
                if descending {
                    assert!(pair[0].0 > pair[1].0, "{label}: descending order");
                } else {
                    assert!(pair[0].0 < pair[1].0, "{label}: ascending order");
                }
            }
            for &(k, v) in pairs {
                assert_eq!(v, k * 10, "{label}: value law for key {k}");
            }
            let keys: Vec<u64> = pairs.iter().map(|(k, _)| *k).collect();
            for stable in &stable_in_bounds {
                assert!(
                    keys.binary_search_by(|k| if descending {
                        stable.cmp(k)
                    } else {
                        k.cmp(stable)
                    })
                    .is_ok(),
                    "{label}: stable key {stable} missing"
                );
            }
        };
        for _ in 0..scans {
            check(&map.range(LOW..HIGH).collect::<Vec<_>>(), false, "range");
            check(
                &map.range_copied(LOW..HIGH).collect::<Vec<_>>(),
                false,
                "range_copied",
            );
            check(
                &map.range_rev(LOW..HIGH).collect::<Vec<_>>(),
                true,
                "range_rev",
            );
            check(
                &map.range_rev_copied(LOW..HIGH).collect::<Vec<_>>(),
                true,
                "range_rev_copied",
            );
            check(&map.to_vec(), false, "to_vec");
            check(&map.to_vec_copied(), false, "to_vec_copied");
        }
        stop.store(true, Ordering::Relaxed);
        for writer in writers {
            writer.join().expect("writer thread");
        }
        // Quiescent: every path agrees exactly.
        let fwd: Vec<(u64, u64)> = map.range(LOW..HIGH).collect();
        assert_eq!(map.range_copied(LOW..HIGH).collect::<Vec<_>>(), fwd);
        let mut rev: Vec<(u64, u64)> = map.range_rev(LOW..HIGH).collect();
        assert_eq!(map.range_rev_copied(LOW..HIGH).collect::<Vec<_>>(), rev);
        rev.reverse();
        assert_eq!(rev, fwd, "reverse walk is the exact mirror");
        assert_eq!(map.to_vec(), map.to_vec_copied());
        map.check_invariants().expect("internal invariants");
    }
}

#[test]
fn vcas_skiplist_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: VcasSkipList<u64, u64> = VcasSkipList::new(10, TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn bundled_skiplist_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: BundledSkipList<u64, u64> = BundledSkipList::new(10, TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn vcas_bst_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn stm_only_maps_match_hashmap_semantics() {
    for_each_case(100, |ops| {
        let hash: StmHashMap<u64, u64> = StmHashMap::new(64);
        let list: StmSkipListMap<u64, u64> = StmSkipListMap::new(10);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected {
                        reference.insert(k, v);
                    }
                    assert_eq!(hash.insert(k, v), expected);
                    assert_eq!(list.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    let expected = reference.remove(&k).is_some();
                    assert_eq!(hash.remove(&k), expected);
                    assert_eq!(list.remove(&k), expected);
                }
                Op::Get(k) => {
                    let k = k as u64;
                    assert_eq!(hash.get(&k), reference.get(&k).copied());
                    assert_eq!(list.get(&k), reference.get(&k).copied());
                }
                _ => {}
            }
        }
        assert_eq!(hash.len(), reference.len());
        assert_eq!(list.len(), reference.len());
    });
}
