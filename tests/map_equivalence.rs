//! Property-based equivalence tests: every evaluated map must behave exactly
//! like `std::collections::BTreeMap` under arbitrary operation sequences
//! (sequential, so the reference semantics are unambiguous).

use std::collections::BTreeMap;

use proptest::prelude::*;
use skiphash_repro::baselines::skiplist::{BundledSkipList, VcasSkipList};
use skiphash_repro::baselines::stm_maps::{StmHashMap, StmSkipListMap};
use skiphash_repro::baselines::timestamp::TimestampMode;
use skiphash_repro::baselines::VcasBst;
use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::{RangePolicy, SkipHash};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
    Ceil(u16),
    Floor(u16),
    Succ(u16),
    Pred(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 64)),
        any::<u16>().prop_map(|k| Op::Ceil(k % 512)),
        any::<u16>().prop_map(|k| Op::Floor(k % 512)),
        any::<u16>().prop_map(|k| Op::Succ(k % 512)),
        any::<u16>().prop_map(|k| Op::Pred(k % 512)),
    ]
}

fn skiphash_with(policy: RangePolicy) -> SkipHash<u64, u64> {
    SkipHashBuilder::new()
        .buckets(257)
        .max_level(10)
        .range_policy(policy)
        .build()
}

fn check_skiphash_against_btreemap(policy: RangePolicy, ops: &[Op]) {
    let map = skiphash_with(policy);
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let k = k as u64;
                let v = v as u64;
                let expected = !reference.contains_key(&k);
                if expected {
                    reference.insert(k, v);
                }
                assert_eq!(map.insert(k, v), expected, "insert({k})");
            }
            Op::Remove(k) => {
                let k = k as u64;
                let expected = reference.remove(&k).is_some();
                assert_eq!(map.remove(&k), expected, "remove({k})");
            }
            Op::Get(k) => {
                let k = k as u64;
                assert_eq!(map.get(&k), reference.get(&k).copied(), "get({k})");
            }
            Op::Range(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                let expected: Vec<(u64, u64)> = reference
                    .range(low..=high)
                    .map(|(k, v)| (*k, *v))
                    .collect();
                assert_eq!(map.range(&low, &high), expected, "range({low},{high})");
            }
            Op::Ceil(k) => {
                let k = k as u64;
                let expected = reference.range(k..).next().map(|(k, _)| *k);
                assert_eq!(map.ceil(&k), expected, "ceil({k})");
            }
            Op::Floor(k) => {
                let k = k as u64;
                let expected = reference.range(..=k).next_back().map(|(k, _)| *k);
                assert_eq!(map.floor(&k), expected, "floor({k})");
            }
            Op::Succ(k) => {
                let k = k as u64;
                let expected = reference.range(k + 1..).next().map(|(k, _)| *k);
                assert_eq!(map.succ(&k), expected, "succ({k})");
            }
            Op::Pred(k) => {
                let k = k as u64;
                let expected = reference.range(..k).next_back().map(|(k, _)| *k);
                assert_eq!(map.pred(&k), expected, "pred({k})");
            }
        }
    }
    assert_eq!(map.len(), reference.len());
    let all: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(map.to_vec(), all);
    map.check_invariants().expect("internal invariants");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skiphash_two_path_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_skiphash_against_btreemap(RangePolicy::TwoPath { tries: 3 }, &ops);
    }

    #[test]
    fn skiphash_fast_only_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_skiphash_against_btreemap(RangePolicy::FastOnly, &ops);
    }

    #[test]
    fn skiphash_slow_only_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        check_skiphash_against_btreemap(RangePolicy::SlowOnly, &ops);
    }

    #[test]
    fn vcas_skiplist_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let map: VcasSkipList<u64, u64> = VcasSkipList::new(10, TimestampMode::Rdtscp);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected { reference.insert(k, v); }
                    prop_assert_eq!(map.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.remove(&k), reference.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.get(&k), reference.get(&k).copied());
                }
                Op::Range(low, len) => {
                    let (low, high) = (low as u64, low as u64 + len as u64);
                    let expected: Vec<(u64, u64)> =
                        reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(map.range(&low, &high), expected);
                }
                // Point queries are not part of the baseline interface.
                _ => {}
            }
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn bundled_skiplist_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let map: BundledSkipList<u64, u64> = BundledSkipList::new(10, TimestampMode::Rdtscp);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected { reference.insert(k, v); }
                    prop_assert_eq!(map.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.remove(&k), reference.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.get(&k), reference.get(&k).copied());
                }
                Op::Range(low, len) => {
                    let (low, high) = (low as u64, low as u64 + len as u64);
                    let expected: Vec<(u64, u64)> =
                        reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(map.range(&low, &high), expected);
                }
                _ => {}
            }
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn vcas_bst_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let map: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected { reference.insert(k, v); }
                    prop_assert_eq!(map.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.remove(&k), reference.remove(&k).is_some());
                }
                Op::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(map.get(&k), reference.get(&k).copied());
                }
                Op::Range(low, len) => {
                    let (low, high) = (low as u64, low as u64 + len as u64);
                    let expected: Vec<(u64, u64)> =
                        reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(map.range(&low, &high), expected);
                }
                _ => {}
            }
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    #[test]
    fn stm_only_maps_match_hashmap_semantics(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let hash: StmHashMap<u64, u64> = StmHashMap::new(64);
        let list: StmSkipListMap<u64, u64> = StmSkipListMap::new(10);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected { reference.insert(k, v); }
                    prop_assert_eq!(hash.insert(k, v), expected);
                    prop_assert_eq!(list.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    let expected = reference.remove(&k).is_some();
                    prop_assert_eq!(hash.remove(&k), expected);
                    prop_assert_eq!(list.remove(&k), expected);
                }
                Op::Get(k) => {
                    let k = k as u64;
                    prop_assert_eq!(hash.get(&k), reference.get(&k).copied());
                    prop_assert_eq!(list.get(&k), reference.get(&k).copied());
                }
                _ => {}
            }
        }
        prop_assert_eq!(hash.len(), reference.len());
        prop_assert_eq!(list.len(), reference.len());
    }
}
