//! Randomized equivalence tests: every evaluated map must behave exactly
//! like `std::collections::BTreeMap` under arbitrary operation sequences
//! (sequential, so the reference semantics are unambiguous).
//!
//! Operation sequences are generated from a seeded [`SmallRng`], so every
//! case is deterministic and a failure reports the seed that produced it
//! (originally written against `proptest`, which is not available in this
//! offline build environment).

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skiphash_repro::baselines::skiplist::{BundledSkipList, VcasSkipList};
use skiphash_repro::baselines::stm_maps::{StmHashMap, StmSkipListMap};
use skiphash_repro::baselines::timestamp::TimestampMode;
use skiphash_repro::baselines::VcasBst;
use skiphash_repro::skiphash::SkipHashBuilder;
use skiphash_repro::{RangePolicy, SkipHash};

const CASES: u64 = 24;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
    Ceil(u16),
    Floor(u16),
    Succ(u16),
    Pred(u16),
    /// Pin a snapshot and checkpoint the reference model alongside it.
    Snapshot,
    /// `get` on every live snapshot, checked against its checkpoint.
    SnapshotGet(u16),
    /// `range` on every live snapshot, checked against its checkpoint.
    SnapshotRange(u16, u16),
    /// Drop the oldest live snapshot (releasing its version custody).
    DropSnapshot,
}

fn random_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0..12u32) {
        0 => Op::Insert(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>()),
        1 => Op::Remove(rng.gen::<u32>() as u16 % 512),
        2 => Op::Get(rng.gen::<u32>() as u16 % 512),
        3 => Op::Range(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>() as u16 % 64),
        4 => Op::Ceil(rng.gen::<u32>() as u16 % 512),
        5 => Op::Floor(rng.gen::<u32>() as u16 % 512),
        6 => Op::Succ(rng.gen::<u32>() as u16 % 512),
        7 => Op::Pred(rng.gen::<u32>() as u16 % 512),
        8 => Op::Snapshot,
        9 => Op::SnapshotGet(rng.gen::<u32>() as u16 % 512),
        10 => Op::SnapshotRange(rng.gen::<u32>() as u16 % 512, rng.gen::<u32>() as u16 % 64),
        _ => Op::DropSnapshot,
    }
}

/// Run `check` on `CASES` random operation sequences of length `1..max_len`,
/// reporting the failing seed on panic.
fn for_each_case(max_len: usize, check: impl Fn(&[Op])) {
    for case in 0..CASES {
        let seed = 0xE9_0000 + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(1..max_len);
        let ops: Vec<Op> = (0..len).map(|_| random_op(&mut rng)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&ops)));
        if let Err(payload) = result {
            eprintln!("equivalence case failed for seed {seed} ({len} ops)");
            std::panic::resume_unwind(payload);
        }
    }
}

fn skiphash_with(policy: RangePolicy) -> SkipHash<u64, u64> {
    SkipHashBuilder::new()
        .buckets(257)
        .max_level(10)
        .range_policy(policy)
        .build()
}

fn check_skiphash_against_btreemap(policy: RangePolicy, ops: &[Op]) {
    let map = skiphash_with(policy);
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    // The versioned reference model: each live snapshot paired with the
    // checkpoint of the reference taken at its pin.  Every snapshot query
    // must replay to its checkpoint no matter how far the live map has
    // moved on since.
    let mut snapshots: Vec<(
        skiphash_repro::skiphash::Snapshot<u64, u64>,
        BTreeMap<u64, u64>,
    )> = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let k = k as u64;
                let v = v as u64;
                let expected = !reference.contains_key(&k);
                if expected {
                    reference.insert(k, v);
                }
                assert_eq!(map.insert(k, v), expected, "insert({k})");
            }
            Op::Remove(k) => {
                let k = k as u64;
                let expected = reference.remove(&k).is_some();
                assert_eq!(map.remove(&k), expected, "remove({k})");
            }
            Op::Get(k) => {
                let k = k as u64;
                assert_eq!(map.get(&k), reference.get(&k).copied(), "get({k})");
            }
            Op::Range(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                let expected: Vec<(u64, u64)> =
                    reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(
                    map.range(low..=high).collect::<Vec<_>>(),
                    expected,
                    "range({low},{high})"
                );
            }
            Op::Ceil(k) => {
                let k = k as u64;
                let expected = reference.range(k..).next().map(|(k, _)| *k);
                assert_eq!(map.ceil(&k), expected, "ceil({k})");
            }
            Op::Floor(k) => {
                let k = k as u64;
                let expected = reference.range(..=k).next_back().map(|(k, _)| *k);
                assert_eq!(map.floor(&k), expected, "floor({k})");
            }
            Op::Succ(k) => {
                let k = k as u64;
                let expected = reference.range(k + 1..).next().map(|(k, _)| *k);
                assert_eq!(map.succ(&k), expected, "succ({k})");
            }
            Op::Pred(k) => {
                let k = k as u64;
                let expected = reference.range(..k).next_back().map(|(k, _)| *k);
                assert_eq!(map.pred(&k), expected, "pred({k})");
            }
            Op::Snapshot => {
                let snap = map.snapshot();
                assert_eq!(snap.len(), reference.len(), "len at the pin");
                snapshots.push((snap, reference.clone()));
            }
            Op::SnapshotGet(k) => {
                let k = k as u64;
                for (i, (snap, model)) in snapshots.iter().enumerate() {
                    assert_eq!(
                        snap.get(&k),
                        model.get(&k).copied(),
                        "snapshot {i} get({k})"
                    );
                }
            }
            Op::SnapshotRange(low, len) => {
                let low = low as u64;
                let high = low + len as u64;
                for (i, (snap, model)) in snapshots.iter().enumerate() {
                    let expected: Vec<(u64, u64)> =
                        model.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                    assert_eq!(
                        snap.range(low..=high).collect::<Vec<_>>(),
                        expected,
                        "snapshot {i} range({low},{high})"
                    );
                }
            }
            Op::DropSnapshot => {
                if !snapshots.is_empty() {
                    snapshots.remove(0);
                }
            }
        }
    }
    // Surviving snapshots replay to their checkpoints in full before they
    // release custody.
    for (i, (snap, model)) in snapshots.iter().enumerate() {
        assert_eq!(snap.len(), model.len(), "snapshot {i} final len");
        let all: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(snap.to_vec(), all, "snapshot {i} final scan");
    }
    drop(snapshots);
    assert_eq!(map.len(), reference.len());
    let all: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(map.to_vec(), all);
    map.check_invariants().expect("internal invariants");
}

/// Replay `ops` against a baseline map exposing get/insert/remove/range and
/// compare with `BTreeMap` (point queries are not part of the baseline
/// interface and are skipped).
fn check_baseline_against_btreemap(
    ops: &[Op],
    insert: impl Fn(u64, u64) -> bool,
    remove: impl Fn(u64) -> bool,
    get: impl Fn(u64) -> Option<u64>,
    range: impl Fn(u64, u64) -> Vec<(u64, u64)>,
    len: impl Fn() -> usize,
) {
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let (k, v) = (k as u64, v as u64);
                let expected = !reference.contains_key(&k);
                if expected {
                    reference.insert(k, v);
                }
                assert_eq!(insert(k, v), expected, "insert({k})");
            }
            Op::Remove(k) => {
                let k = k as u64;
                assert_eq!(remove(k), reference.remove(&k).is_some(), "remove({k})");
            }
            Op::Get(k) => {
                let k = k as u64;
                assert_eq!(get(k), reference.get(&k).copied(), "get({k})");
            }
            Op::Range(low, rlen) => {
                let (low, high) = (low as u64, low as u64 + rlen as u64);
                let expected: Vec<(u64, u64)> =
                    reference.range(low..=high).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(range(low, high), expected, "range({low},{high})");
            }
            _ => {}
        }
    }
    assert_eq!(len(), reference.len());
}

#[test]
fn skiphash_two_path_matches_btreemap() {
    for_each_case(120, |ops| {
        check_skiphash_against_btreemap(RangePolicy::TwoPath { tries: 3 }, ops);
    });
}

#[test]
fn skiphash_fast_only_matches_btreemap() {
    for_each_case(120, |ops| {
        check_skiphash_against_btreemap(RangePolicy::FastOnly, ops);
    });
}

#[test]
fn skiphash_slow_only_matches_btreemap() {
    for_each_case(80, |ops| {
        check_skiphash_against_btreemap(RangePolicy::SlowOnly, ops);
    });
}

#[test]
fn vcas_skiplist_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: VcasSkipList<u64, u64> = VcasSkipList::new(10, TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn bundled_skiplist_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: BundledSkipList<u64, u64> = BundledSkipList::new(10, TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn vcas_bst_matches_btreemap() {
    for_each_case(100, |ops| {
        let map: VcasBst<u64, u64> = VcasBst::new(TimestampMode::Rdtscp);
        check_baseline_against_btreemap(
            ops,
            |k, v| map.insert(k, v),
            |k| map.remove(&k),
            |k| map.get(&k),
            |low, high| map.range(&low, &high),
            || map.len(),
        );
    });
}

#[test]
fn stm_only_maps_match_hashmap_semantics() {
    for_each_case(100, |ops| {
        let hash: StmHashMap<u64, u64> = StmHashMap::new(64);
        let list: StmSkipListMap<u64, u64> = StmSkipListMap::new(10);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match *op {
                Op::Insert(k, v) => {
                    let (k, v) = (k as u64, v as u64);
                    let expected = !reference.contains_key(&k);
                    if expected {
                        reference.insert(k, v);
                    }
                    assert_eq!(hash.insert(k, v), expected);
                    assert_eq!(list.insert(k, v), expected);
                }
                Op::Remove(k) => {
                    let k = k as u64;
                    let expected = reference.remove(&k).is_some();
                    assert_eq!(hash.remove(&k), expected);
                    assert_eq!(list.remove(&k), expected);
                }
                Op::Get(k) => {
                    let k = k as u64;
                    assert_eq!(hash.get(&k), reference.get(&k).copied());
                    assert_eq!(list.get(&k), reference.get(&k).copied());
                }
                _ => {}
            }
        }
        assert_eq!(hash.len(), reference.len());
        assert_eq!(list.len(), reference.len());
    });
}
