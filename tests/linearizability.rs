//! Concurrent stress tests checking linearizability-style invariants of the
//! skip hash under each range-query policy, and agreement between the skip
//! hash and the baselines under identical concurrent histories where the
//! outcome is deterministic.

use skiphash_stm::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skiphash_repro::skiphash::{RemovalPolicy, SkipHashBuilder};
use skiphash_repro::{RangePolicy, SkipHash};

fn build(policy: RangePolicy, removal: RemovalPolicy) -> Arc<SkipHash<u64, u64>> {
    Arc::new(
        SkipHashBuilder::new()
            .buckets(4_099)
            .max_level(14)
            .range_policy(policy)
            .removal_policy(removal)
            .build(),
    )
}

/// Writers toggle odd keys while even keys stay untouched; every range query
/// must observe *all* even keys exactly once and never a duplicate key.
fn stable_evens_scenario(policy: RangePolicy, removal: RemovalPolicy) {
    const UNIVERSE: u64 = 2_000;
    let map = build(policy, removal);
    for key in (0..UNIVERSE).step_by(2) {
        assert!(map.insert(key, key));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..3u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut i = w;
            while !stop.load(Ordering::Relaxed) {
                let key = (i * 2 + 1) % UNIVERSE;
                if !map.insert(key, key) {
                    map.remove(&key);
                }
                i = i.wrapping_add(7);
            }
        }));
    }

    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut queries = 0;
    while std::time::Instant::now() < deadline {
        let low = (queries * 37) % (UNIVERSE / 2);
        let high = low + 500;
        let window: Vec<(u64, u64)> = map.range(low..=high).collect();
        // All even keys in the window must be present exactly once.
        let expected_evens = (low..=high).filter(|k| k % 2 == 0).count();
        let observed_evens = window.iter().filter(|(k, _)| k % 2 == 0).count();
        assert_eq!(observed_evens, expected_evens, "policy {policy:?}");
        // Sorted, no duplicates.
        assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
        // Every reported value matches its key (writers always store v == k).
        assert!(window.iter().all(|(k, v)| k == v));
        queries += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    assert!(queries > 0);
    map.check_invariants().expect("invariants after stress");
}

#[test]
fn two_path_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
}

#[test]
fn fast_only_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(RangePolicy::FastOnly, RemovalPolicy::Buffered(32));
}

#[test]
fn slow_only_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(RangePolicy::SlowOnly, RemovalPolicy::Immediate);
}

#[test]
fn slow_only_with_buffered_removals_is_linearizable() {
    stable_evens_scenario(RangePolicy::SlowOnly, RemovalPolicy::Buffered(8));
}

/// A value moved between two keys must never be observed in both or neither.
#[test]
fn atomic_key_migration_is_never_partially_visible() {
    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
    const TOKEN: u64 = 4242;
    assert!(map.insert(0, TOKEN));
    let stop = Arc::new(AtomicBool::new(false));
    let mover = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut at = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let next = (at + 1) % 64;
                // Not atomic as a pair — but each range query linearizes, so
                // it must see the token under exactly one key or be ordered
                // entirely before/after this two-step move; the observer
                // below accounts for the transient where the token is absent
                // (between remove and insert), but must never see two copies.
                map.remove(&at);
                map.insert(next, TOKEN);
                at = next;
            }
        })
    };
    for _ in 0..2_000 {
        let snapshot: Vec<(u64, u64)> = map.range(0..=63).collect();
        let copies = snapshot.iter().filter(|(_, v)| *v == TOKEN).count();
        assert!(copies <= 1, "token duplicated: {snapshot:?}");
    }
    stop.store(true, Ordering::Relaxed);
    mover.join().unwrap();
}

/// Concurrent inserts of disjoint key sets must all land, and the final
/// contents must be identical across every policy and baseline.
#[test]
fn disjoint_concurrent_inserts_land_exactly_once() {
    for policy in [
        RangePolicy::FastOnly,
        RangePolicy::SlowOnly,
        RangePolicy::TwoPath { tries: 3 },
    ] {
        let map = build(policy, RemovalPolicy::Buffered(32));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    assert!(map.insert(t * 10_000 + i, i));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.len(), 2_000);
        let snapshot: Vec<(u64, u64)> = map.range(..).collect();
        assert_eq!(snapshot.len(), 2_000);
        map.check_invariants().expect("invariants");
    }
}

/// Snapshots pin exact states: a controller thread mutates its own keyspace,
/// checkpoints a `BTreeMap` reference, and takes a snapshot after every
/// batch — while four writer threads storm a disjoint keyspace the whole
/// time.  Every snapshot, verified both mid-storm and long after later
/// batches have overwritten everything, must equal its reference model
/// replayed to the pinned version: same gets, same ranges, same full scan.
#[test]
fn snapshots_equal_the_reference_model_replayed_to_their_version() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use skiphash_repro::skiphash::Snapshot;
    use std::collections::BTreeMap;

    const MODEL_KEYS: u64 = 128; // controller's keyspace: 0..MODEL_KEYS
    const STORM_BASE: u64 = 1_000_000; // writers churn STORM_BASE..
    const BATCHES: usize = 40;

    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = STORM_BASE + w * 100_000 + (i % 512);
                if !map.insert(key, i) {
                    map.remove(&key);
                }
                i = i.wrapping_add(1);
            }
        }));
    }

    let mut rng = SmallRng::seed_from_u64(0x5AA9_0001);
    let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
    let mut pinned: Vec<(Snapshot<u64, u64>, BTreeMap<u64, u64>)> = Vec::new();
    for batch in 0..BATCHES {
        for _ in 0..24 {
            let key = rng.gen_range(0..MODEL_KEYS);
            if rng.gen::<bool>() {
                let value = rng.gen::<u32>() as u64;
                map.upsert(key, value);
                reference.insert(key, value);
            } else {
                assert_eq!(map.remove(&key), reference.remove(&key).is_some());
            }
        }
        let snap = map.snapshot();
        // Mid-storm spot check: a probe right away, while writers race.
        let probe = rng.gen_range(0..MODEL_KEYS);
        assert_eq!(
            snap.get(&probe),
            reference.get(&probe).copied(),
            "batch {batch} probe {probe}"
        );
        pinned.push((snap, reference.clone()));
    }

    // Every snapshot — including the earliest, pinned dozens of committed
    // batches ago — must still replay exactly to its checkpoint.
    for (i, (snap, model)) in pinned.iter().enumerate() {
        let expected: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(
            snap.range(0..MODEL_KEYS).collect::<Vec<_>>(),
            expected,
            "snapshot {i} diverged from its checkpoint"
        );
        for key in 0..MODEL_KEYS {
            assert_eq!(snap.get(&key), model.get(&key).copied(), "snapshot {i}");
        }
        // Version order matches checkpoint order.
        if i > 0 {
            assert!(pinned[i - 1].0.version() <= snap.version());
        }
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    drop(pinned);
    map.check_invariants().expect("invariants after stress");
}

/// No tearing: four writer threads shuffle value between 64 accounts with
/// atomic two-key transfers, so *every* committed state sums to exactly the
/// initial total.  Any snapshot — however it interleaves with the transfer
/// storm — must observe one such state: the full scan sums to the total, the
/// population never changes, and re-reading a key through `get` agrees with
/// what the scan reported.
#[test]
fn snapshot_reads_never_tear_under_atomic_transfers() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const ACCOUNTS: u64 = 64;
    const INITIAL: u64 = 1_000;

    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
    for key in 0..ACCOUNTS {
        assert!(map.insert(key, INITIAL));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xBA1A_0000 + w);
            while !stop.load(Ordering::Relaxed) {
                let from = rng.gen_range(0..ACCOUNTS);
                let to = (from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
                let amount = rng.gen_range(1..50u64);
                map.transact(|v| {
                    let balance = v.get(&from)?.expect("accounts are never removed");
                    if balance >= amount {
                        v.upsert(from, balance - amount)?;
                        let target = v.get(&to)?.expect("accounts are never removed");
                        v.upsert(to, target + amount)?;
                    }
                    Ok(())
                });
            }
        }));
    }

    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut audited = 0u64;
    let mut previous_version = 0u64;
    while std::time::Instant::now() < deadline {
        let snap = map.snapshot();
        assert!(snap.version() >= previous_version, "clock went backwards");
        previous_version = snap.version();
        let scan = snap.to_vec();
        assert_eq!(scan.len() as u64, ACCOUNTS);
        assert_eq!(snap.len() as u64, ACCOUNTS);
        let total: u64 = scan.iter().map(|(_, v)| v).sum();
        assert_eq!(
            total,
            ACCOUNTS * INITIAL,
            "snapshot at version {} observed a torn transfer",
            snap.version()
        );
        // Re-reads through a different access path must agree with the scan.
        for (key, value) in scan.iter().step_by(7) {
            assert_eq!(snap.get(key), Some(*value), "tearing within one snapshot");
        }
        audited += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    assert!(audited > 0);
    let final_total: u64 = map.to_vec().iter().map(|(_, v)| v).sum();
    assert_eq!(final_total, ACCOUNTS * INITIAL);
    map.check_invariants().expect("invariants after stress");
}

/// Removals racing with lookups: a lookup must never return a value for a key
/// that was removed before the lookup began (monotonic reads through the
/// hash-map invariant).
#[test]
fn lookups_never_resurrect_removed_keys() {
    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(4),
    );
    for key in 0..1_000u64 {
        map.insert(key, key);
    }
    let map2 = Arc::clone(&map);
    let remover = thread::spawn(move || {
        for key in 0..1_000u64 {
            assert!(map2.remove(&key));
        }
    });
    // Concurrently look keys up in the same order; once a lookup misses, all
    // later lookups of *that same key* must also miss.
    let mut missed = vec![false; 1_000];
    for _ in 0..20 {
        for key in 0..1_000u64 {
            let found = map.get(&key).is_some();
            if missed[key as usize] {
                assert!(!found, "key {key} reappeared after being observed absent");
            }
            if !found {
                missed[key as usize] = true;
            }
        }
    }
    remover.join().unwrap();
    assert_eq!(map.len(), 0);
    map.check_invariants().expect("invariants");
}
