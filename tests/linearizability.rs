//! Concurrent stress tests checking linearizability-style invariants of the
//! skip hash under each range-query policy, and agreement between the skip
//! hash and the baselines under identical concurrent histories where the
//! outcome is deterministic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skiphash_repro::skiphash::{RemovalPolicy, SkipHashBuilder};
use skiphash_repro::{RangePolicy, SkipHash};

fn build(policy: RangePolicy, removal: RemovalPolicy) -> Arc<SkipHash<u64, u64>> {
    Arc::new(
        SkipHashBuilder::new()
            .buckets(4_099)
            .max_level(14)
            .range_policy(policy)
            .removal_policy(removal)
            .build(),
    )
}

/// Writers toggle odd keys while even keys stay untouched; every range query
/// must observe *all* even keys exactly once and never a duplicate key.
fn stable_evens_scenario(policy: RangePolicy, removal: RemovalPolicy) {
    const UNIVERSE: u64 = 2_000;
    let map = build(policy, removal);
    for key in (0..UNIVERSE).step_by(2) {
        assert!(map.insert(key, key));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..3u64 {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut i = w;
            while !stop.load(Ordering::Relaxed) {
                let key = (i * 2 + 1) % UNIVERSE;
                if !map.insert(key, key) {
                    map.remove(&key);
                }
                i = i.wrapping_add(7);
            }
        }));
    }

    let deadline = std::time::Instant::now() + Duration::from_millis(600);
    let mut queries = 0;
    while std::time::Instant::now() < deadline {
        let low = (queries * 37) % (UNIVERSE / 2);
        let high = low + 500;
        let window: Vec<(u64, u64)> = map.range(low..=high).collect();
        // All even keys in the window must be present exactly once.
        let expected_evens = (low..=high).filter(|k| k % 2 == 0).count();
        let observed_evens = window.iter().filter(|(k, _)| k % 2 == 0).count();
        assert_eq!(observed_evens, expected_evens, "policy {policy:?}");
        // Sorted, no duplicates.
        assert!(window.windows(2).all(|w| w[0].0 < w[1].0));
        // Every reported value matches its key (writers always store v == k).
        assert!(window.iter().all(|(k, v)| k == v));
        queries += 1;
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().unwrap();
    }
    assert!(queries > 0);
    map.check_invariants().expect("invariants after stress");
}

#[test]
fn two_path_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
}

#[test]
fn fast_only_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(RangePolicy::FastOnly, RemovalPolicy::Buffered(32));
}

#[test]
fn slow_only_ranges_are_linearizable_under_updates() {
    stable_evens_scenario(RangePolicy::SlowOnly, RemovalPolicy::Immediate);
}

#[test]
fn slow_only_with_buffered_removals_is_linearizable() {
    stable_evens_scenario(RangePolicy::SlowOnly, RemovalPolicy::Buffered(8));
}

/// A value moved between two keys must never be observed in both or neither.
#[test]
fn atomic_key_migration_is_never_partially_visible() {
    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(32),
    );
    const TOKEN: u64 = 4242;
    assert!(map.insert(0, TOKEN));
    let stop = Arc::new(AtomicBool::new(false));
    let mover = {
        let map = Arc::clone(&map);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut at = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let next = (at + 1) % 64;
                // Not atomic as a pair — but each range query linearizes, so
                // it must see the token under exactly one key or be ordered
                // entirely before/after this two-step move; the observer
                // below accounts for the transient where the token is absent
                // (between remove and insert), but must never see two copies.
                map.remove(&at);
                map.insert(next, TOKEN);
                at = next;
            }
        })
    };
    for _ in 0..2_000 {
        let snapshot: Vec<(u64, u64)> = map.range(0..=63).collect();
        let copies = snapshot.iter().filter(|(_, v)| *v == TOKEN).count();
        assert!(copies <= 1, "token duplicated: {snapshot:?}");
    }
    stop.store(true, Ordering::Relaxed);
    mover.join().unwrap();
}

/// Concurrent inserts of disjoint key sets must all land, and the final
/// contents must be identical across every policy and baseline.
#[test]
fn disjoint_concurrent_inserts_land_exactly_once() {
    for policy in [
        RangePolicy::FastOnly,
        RangePolicy::SlowOnly,
        RangePolicy::TwoPath { tries: 3 },
    ] {
        let map = build(policy, RemovalPolicy::Buffered(32));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    assert!(map.insert(t * 10_000 + i, i));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.len(), 2_000);
        let snapshot: Vec<(u64, u64)> = map.range(..).collect();
        assert_eq!(snapshot.len(), 2_000);
        map.check_invariants().expect("invariants");
    }
}

/// Removals racing with lookups: a lookup must never return a value for a key
/// that was removed before the lookup began (monotonic reads through the
/// hash-map invariant).
#[test]
fn lookups_never_resurrect_removed_keys() {
    let map = build(
        RangePolicy::TwoPath { tries: 3 },
        RemovalPolicy::Buffered(4),
    );
    for key in 0..1_000u64 {
        map.insert(key, key);
    }
    let map2 = Arc::clone(&map);
    let remover = thread::spawn(move || {
        for key in 0..1_000u64 {
            assert!(map2.remove(&key));
        }
    });
    // Concurrently look keys up in the same order; once a lookup misses, all
    // later lookups of *that same key* must also miss.
    let mut missed = vec![false; 1_000];
    for _ in 0..20 {
        for key in 0..1_000u64 {
            let found = map.get(&key).is_some();
            if missed[key as usize] {
                assert!(!found, "key {key} reappeared after being observed absent");
            }
            if !found {
                missed[key as usize] = true;
            }
        }
    }
    remover.join().unwrap();
    assert_eq!(map.len(), 0);
    map.check_invariants().expect("invariants");
}
