//! Unsafe-code audit: every `unsafe` site in the workspace's own code must
//! carry its proof obligation next to it.
//!
//! The rule this test enforces (over `crates/` and `vendor/crossbeam-epoch/`):
//!
//! * an `unsafe {` block must have a `// SAFETY:` comment on the same line
//!   or within the few lines directly above it,
//! * an `unsafe fn` must document its contract — a `/// # Safety` doc
//!   section on the declaration (or an adjacent `// SAFETY:` comment for
//!   private helpers),
//! * an `unsafe impl` must justify itself with an adjacent `// SAFETY:`
//!   comment.
//!
//! This is a lexical scan, not a parser: it reads lines, skips comments and
//! doc text, and looks a bounded window upward for the justification.  That
//! is deliberate — the point is a cheap, dependency-free tripwire that makes
//! "add the SAFETY comment" part of adding the unsafe block, with the deep
//! checking left to Miri/TSan/the model checker (see docs/VERIFICATION.md).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How far above an `unsafe` site a justification may sit (comment lines,
/// attributes, and doc lines in between do not break adjacency).
const WINDOW: usize = 12;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the umbrella crate *is* the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strip line comments and (non-doc) string contents so `unsafe` inside a
/// message or a comment does not count as a site, while `// SAFETY:` text is
/// still recognizable on the raw line.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_comment_or_doc(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")
}

fn has_safety_marker(line: &str) -> bool {
    let t = line.trim_start();
    t.contains("// SAFETY:") || t.contains("//! SAFETY:")
}

fn has_safety_doc(line: &str) -> bool {
    let t = line.trim_start();
    (t.starts_with("///") || t.starts_with("//!")) && t.contains("# Safety")
}

/// True when `idx` has a justification in its adjacency window: same line,
/// or up to `WINDOW` lines above consisting only of comments / attributes /
/// doc text, at least one of which carries the marker.
fn justified(lines: &[&str], idx: usize, allow_safety_doc: bool) -> bool {
    if has_safety_marker(lines[idx]) {
        return true;
    }
    let mut steps = 0;
    let mut i = idx;
    while i > 0 && steps < WINDOW {
        i -= 1;
        steps += 1;
        let line = lines[i];
        if has_safety_marker(line) || (allow_safety_doc && has_safety_doc(line)) {
            return true;
        }
        // A code line breaks adjacency — unless it is itself part of the
        // same contiguous unsafe cluster (multi-line conditions chaining
        // several `unsafe` operand lines under one comment).
        if !is_comment_or_doc(line)
            && !line.trim().is_empty()
            && !code_part(line).contains("unsafe")
        {
            return false;
        }
    }
    false
}

#[derive(Debug)]
struct Violation {
    file: PathBuf,
    line: usize,
    kind: &'static str,
    text: String,
}

fn audit_file(path: &Path, violations: &mut Vec<Violation>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("unreadable source file {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        if is_comment_or_doc(raw) {
            continue;
        }
        let code = code_part(raw);
        if !code.contains("unsafe") {
            continue;
        }
        // Classify the site.  `unsafe_op_in_unsafe_fn`-style lint names and
        // `forbid(unsafe_code)` never reach here (attribute lines are
        // skipped above; lint names don't contain the bare token with a
        // following brace/keyword).
        let (kind, allow_safety_doc) = if let Some(at) = code.find("unsafe fn") {
            // `unsafe fn` in *type* position (`: unsafe fn(..)`,
            // `-> unsafe fn(..)`) declares no body and carries no proof
            // obligation of its own; only definitions do.
            let before = code[..at].trim_end();
            if before.ends_with([':', '>', '(', ',', '=']) {
                continue;
            }
            ("unsafe fn", true)
        } else if code.contains("unsafe impl") || code.contains("unsafe trait") {
            ("unsafe impl", false)
        } else if code.contains("unsafe {") || code.contains("unsafe{") {
            ("unsafe block", false)
        } else {
            continue; // e.g. `unsafe` in a string literal split across tokens
        };
        if !justified(&lines, idx, allow_safety_doc) {
            violations.push(Violation {
                file: path.to_path_buf(),
                line: idx + 1,
                kind,
                text: raw.trim().to_string(),
            });
        }
    }
}

#[test]
fn every_unsafe_site_carries_its_proof() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    rust_sources(&root.join("vendor").join("crossbeam-epoch"), &mut files);
    files.sort();
    assert!(
        !files.is_empty(),
        "audit found no sources — is the test running from the workspace root?"
    );

    let mut violations = Vec::new();
    for file in &files {
        audit_file(file, &mut violations);
    }

    if !violations.is_empty() {
        let mut msg = format!(
            "{} unsafe site(s) without an adjacent justification \
             (`// SAFETY:` comment, or `# Safety` doc section for unsafe fns):\n",
            violations.len()
        );
        for v in &violations {
            let rel = v.file.strip_prefix(&root).unwrap_or(&v.file);
            let _ = writeln!(
                msg,
                "  {}:{} [{}] {}",
                rel.display(),
                v.line,
                v.kind,
                v.text
            );
        }
        panic!("{msg}");
    }
}
