//! Umbrella crate for the Skip Hash reproduction workspace.
//!
//! This crate re-exports the main entry points of the workspace so that
//! examples and integration tests can use a single dependency:
//!
//! * [`skiphash`] — the skip hash ordered map (the paper's contribution).
//! * [`skiphash_stm`] — the software transactional memory substrate.
//! * [`skiphash_baselines`] — the vCAS / bundled / STM baselines used in the
//!   paper's evaluation.
//! * [`skiphash_durability`] — opt-in persistence: commit-record WAL with
//!   group commit, snapshot checkpoints, and crash recovery.
//! * [`skiphash_harness`] — the microbenchmark harness that regenerates the
//!   paper's figures and tables.
//!
//! # Quick start
//!
//! ```
//! use skiphash_repro::SkipHash;
//!
//! let map: SkipHash<u64, u64> = SkipHash::new();
//! map.insert(1, 10);
//! map.insert(5, 50);
//! map.insert(3, 30);
//! assert_eq!(map.get(&3), Some(30));
//! let pairs: Vec<_> = map.range(1..=4).collect();
//! assert_eq!(pairs, vec![(1, 10), (3, 30)]);
//! ```
//!
//! # Composable transactions
//!
//! Several operations — on one map or on several maps sharing an
//! [`stm::Stm`] runtime — can run as one atomic transaction via
//! [`SkipHash::view`]:
//!
//! ```
//! use skiphash_repro::SkipHash;
//!
//! let map: SkipHash<u64, u64> = SkipHash::new();
//! map.insert(1, 10);
//! // Move the value from key 1 to key 2 atomically.
//! map.stm().run(|tx| {
//!     let v = map.view(tx).take(&1)?.unwrap_or(0);
//!     map.view(tx).insert(2, v)?;
//!     Ok(())
//! });
//! assert_eq!((map.get(&1), map.get(&2)), (None, Some(10)));
//! ```

pub use skiphash;
pub use skiphash_baselines as baselines;
pub use skiphash_durability as durability;
pub use skiphash_harness as harness;
pub use skiphash_stm as stm;

pub use skiphash::{Compute, Range, RangePolicy, SkipHash, SkipHashBuilder, TxView};
pub use skiphash_durability::{DurableMap, DurableMapBuilder};
pub use skiphash_stm::atomically;
