//! Umbrella crate for the Skip Hash reproduction workspace.
//!
//! This crate re-exports the main entry points of the workspace so that
//! examples and integration tests can use a single dependency:
//!
//! * [`skiphash`] — the skip hash ordered map (the paper's contribution).
//! * [`skiphash_stm`] — the software transactional memory substrate.
//! * [`skiphash_baselines`] — the vCAS / bundled / STM baselines used in the
//!   paper's evaluation.
//! * [`skiphash_harness`] — the microbenchmark harness that regenerates the
//!   paper's figures and tables.
//!
//! # Quick start
//!
//! ```
//! use skiphash_repro::SkipHash;
//!
//! let map: SkipHash<u64, u64> = SkipHash::new();
//! map.insert(1, 10);
//! map.insert(5, 50);
//! map.insert(3, 30);
//! assert_eq!(map.get(&3), Some(30));
//! let pairs = map.range(&1, &4);
//! assert_eq!(pairs, vec![(1, 10), (3, 30)]);
//! ```

pub use skiphash;
pub use skiphash_baselines as baselines;
pub use skiphash_harness as harness;
pub use skiphash_stm as stm;

pub use skiphash::{RangePolicy, SkipHash, SkipHashBuilder};
