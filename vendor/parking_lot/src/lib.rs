//! Minimal, API-compatible stand-in for the subset of `parking_lot` used by
//! this workspace, vendored because the build environment has no access to
//! crates.io.
//!
//! [`Mutex`] and [`RwLock`] wrap their `std::sync` counterparts and expose
//! `parking_lot`'s panic-free locking API (no `Result`, poisoning is
//! ignored).  `std`'s locks are slower under heavy contention than real
//! `parking_lot`, which only matters for benchmark absolute numbers, not for
//! correctness.

use std::sync::{self, PoisonError};

/// A mutual exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
