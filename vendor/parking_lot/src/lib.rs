//! Minimal, API-compatible stand-in for the subset of `parking_lot` used by
//! this workspace, vendored because the build environment has no access to
//! crates.io.
//!
//! [`Mutex`] and [`RwLock`] wrap their `std::sync` counterparts and expose
//! `parking_lot`'s panic-free locking API (no `Result`, poisoning is
//! ignored).
//!
//! # Spin-then-yield fast path
//!
//! Real `parking_lot` spins briefly in user space before parking a thread;
//! `std`'s locks historically go to the futex much sooner.  Since the
//! structures built on this shim (the vCAS / bundled baselines, the RQC's
//! deferral buffers, the slab's overflow pools) hold their locks for tens of
//! nanoseconds, blocking on every contended acquisition made the baselines
//! pay scheduler costs the paper's C++ implementations never see.  `lock` /
//! `read` / `write` therefore run a short bounded backoff loop of `try_*`
//! attempts — exponential `spin_loop` hints first, a few `yield_now`s after —
//! before falling back to the blocking `std` acquisition.  The fallback
//! bounds the worst case (no livelock, no unbounded spinning against a
//! long-held lock); fairness is whatever `std` provides.  Remaining gap to
//! real `parking_lot` (adaptive spinning, eventual-fairness parking-lot
//! queues) is documented in `docs/BENCHMARKS.md`.

use std::sync::{self, PoisonError};

/// Spin rounds before each blocking fallback: rounds 0..=5 issue 2^round
/// `spin_loop` hints, later rounds yield the scheduler slice instead.
const SPIN_ROUNDS: u32 = 6;
const YIELD_ROUNDS: u32 = 4;

/// One bounded contention-backoff pass around `try_acquire`; returns the
/// guard if any attempt succeeded.
#[inline]
fn spin_acquire<G>(mut try_acquire: impl FnMut() -> Option<G>) -> Option<G> {
    for round in 0..SPIN_ROUNDS + YIELD_ROUNDS {
        if let Some(guard) = try_acquire() {
            return Some(guard);
        }
        if round < SPIN_ROUNDS {
            for _ in 0..(1u32 << round) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
    }
    None
}

/// A mutual exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock: a bounded spin-then-yield fast path, then the
    /// blocking `std` acquisition.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(guard) = spin_acquire(|| self.try_lock()) {
            return guard;
        }
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access (spin-then-yield fast path, then block).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(guard) = spin_acquire(|| self.try_read()) {
            return guard;
        }
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire exclusive write access (spin-then-yield fast path, then
    /// block).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(guard) = spin_acquire(|| self.try_write()) {
            return guard;
        }
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn contended_lock_makes_progress_past_the_spin_path() {
        // Hold the lock longer than the whole spin budget so waiters are
        // forced through the blocking fallback, then verify every increment
        // lands (the spin path must never *replace* acquisition).
        let m = Arc::new(Mutex::new(0u64));
        let threads = 4;
        let iters = 200;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..iters {
                        let mut g = m.lock();
                        *g += 1;
                        std::hint::spin_loop();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), threads * iters);
    }

    #[test]
    fn contended_rwlock_write_path_is_exact() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                        let _ = *l.read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
