//! Minimal, API-compatible stand-in for the subset of `crossbeam-epoch` used
//! by this workspace.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors this shim instead of the real crate.  It implements a genuine
//! epoch-based reclamation (EBR) scheme whose **hot path is lock-free**: no
//! global mutex is ever acquired by [`pin`] or [`Guard::defer_destroy`].
//!
//! # Design
//!
//! The shim is organised around three global structures and one thread-local:
//!
//! * **Global epoch** — a cache-line-padded `AtomicUsize`, advanced by at
//!   most one step at a time during collection cycles.
//! * **Participant registry** — a lock-free, *push-only* intrusive singly
//!   linked list of per-thread `Slot`s.  Each slot is a cache-line-padded
//!   word holding `(epoch << 1) | ACTIVE` while its thread is pinned and `0`
//!   otherwise.  Slots are allocated once (`Box::leak`) and never freed;
//!   when a thread exits, its slot is parked on a mutex-protected **free
//!   list** and handed to the next thread that registers.  The mutex is only
//!   touched at thread registration and teardown — never on the pin path —
//!   and bounds the registry's size by the maximum number of concurrently
//!   live threads rather than by the number of threads ever spawned.
//! * **Sealed-bag stack** — a Treiber stack of epoch-tagged garbage bags.
//!   [`Guard::defer_destroy`] pushes into the calling thread's *local* bag
//!   (plain `Vec` push, no atomics); the bag is **sealed** — tagged with the
//!   global epoch and pushed onto the stack with a CAS — only when it
//!   reaches `BAG_SEAL_THRESHOLD` entries, when the thread runs a
//!   collection cycle, or at thread exit.  Sealing after retirement is safe
//!   because the seal-time epoch can only be *later* than each entry's
//!   retirement epoch, which delays (never hastens) reclamation.
//! * **Thread-local `Local`** — the thread's slot reference, its pin depth
//!   (pins nest), its unsealed bag, and a pin counter that triggers a
//!   collection cycle every `PINS_BETWEEN_COLLECT` top-level pins.
//!
//! A collection cycle seals the local bag, tries to advance the global epoch
//! (a lock-free scan of the registry: advance from `e` to `e + 1` only if
//! every *active* slot has observed `e`), then swaps the sealed-bag stack
//! empty and frees every bag whose tag is at least two epochs old,
//! re-pushing the rest.  Garbage sealed at epoch `e` is freed only once the
//! global epoch reaches `e + 2`, by which point every thread that was pinned
//! when the garbage was still reachable has unpinned.
//!
//! Deferred destructors are executed **outside** the thread-local borrow
//! (the cycle's seal step happens under the borrow; the advance/collect
//! steps after it), so drop glue is allowed to re-enter the collector —
//! pin, defer more garbage, drop nested guards.  Reference-counted
//! structures rely on this: freeing a retired node may drop the last
//! reference to a neighbour, whose retirement then defers *its* block from
//! inside the running cycle.  Such nested pins are depth ≥ 2, so they never
//! trigger a recursive collection cycle themselves.
//!
//! # Ordering rationale
//!
//! All atomics use `Relaxed`/`Acquire`/`Release` orderings except for the
//! two `SeqCst` fences the EBR protocol actually requires:
//!
//! 1. **In [`pin`]**, between publishing the slot's active state and
//!    (re-)reading the global epoch.  This is what guarantees that once a
//!    collector's registry scan misses this thread, the thread's subsequent
//!    pointer loads happen after the scan — so the collector cannot free
//!    memory the thread is about to read.
//! 2. **In `seal_local`**, between the retirement stores (the pointer
//!    swaps that made the garbage unreachable) and the load of the global
//!    epoch used as the bag's tag.  This is what guarantees the tag is not
//!    older than the epoch during which the garbage was still reachable.
//!
//! The epoch-advance scan in `try_advance` also issues a `SeqCst` fence
//! before reading slot states, pairing with fence (1).  Everything else —
//! unpinning (`Release` store), list publication (`Release` CAS /
//! `Acquire` loads), bag sealing (`Release` CAS) — needs no sequential
//! consistency.
//!
//! The public surface (`Atomic`, `Owned`, `Shared`, `Guard`, [`pin`],
//! [`unprotected`]) matches `crossbeam-epoch` 0.9 closely enough that
//! swapping the real crate back in is a one-line manifest change.  The
//! [`Bag`] type and [`Guard::flush_batch`] are shim extensions used by the
//! STM layer to retire an entire transaction's garbage with a single
//! thread-local access per commit.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::RefCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr;
use std::sync::atomic::{fence, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

const ACTIVE: usize = 1;

/// Number of top-level pins between collection attempts on a thread.
const PINS_BETWEEN_COLLECT: usize = 64;

/// Local-bag size at which the bag is sealed and published eagerly (without
/// waiting for the next collection cycle).
const BAG_SEAL_THRESHOLD: usize = 64;

/// One registered thread: `(epoch << 1) | ACTIVE` when pinned, `0` otherwise.
///
/// Padded to its own cache line so one thread's pin/unpin stores never
/// invalidate another thread's slot.
#[repr(align(128))]
struct Slot {
    state: AtomicUsize,
    /// Intrusive registry link.  Written once (before the slot is published
    /// via a `Release` CAS on the registry head) and never changed, so
    /// lock-free traversal needs only `Acquire` loads.
    next: AtomicPtr<Slot>,
}

/// A garbage bag sealed with the epoch at which it was published.
struct SealedBag {
    epoch: usize,
    garbage: Vec<Deferred>,
    /// Treiber-stack link.
    next: AtomicPtr<SealedBag>,
}

#[repr(align(128))]
struct PaddedEpoch(AtomicUsize);

/// Pointer wrapper so the registration free list (a cold, mutex-protected
/// path) can hold `*const Slot` values.
struct FreeSlot(*const Slot);
// SAFETY: `Slot` contains only atomics; the raw pointer is `'static` (the
// slot is leaked) and only dereferenced to re-register a thread.
unsafe impl Send for FreeSlot {}

/// How many collected `SealedBag` allocations (box + garbage `Vec` capacity)
/// are parked for reuse by future seals.  Steady-state churn cycles bags
/// between the local bag, the sealed stack, and this pool without ever
/// touching the global allocator; the cap only bounds memory after a burst.
const BAG_POOL_CAP: usize = 32;

struct Registry {
    epoch: PaddedEpoch,
    /// Head of the lock-free intrusive participant list (push-only).
    slots: AtomicPtr<Slot>,
    /// Head of the Treiber stack of sealed garbage bags.
    sealed: AtomicPtr<SealedBag>,
    /// Slots of exited threads, reused by new registrations.  Locked only at
    /// thread registration/teardown, never on the pin or defer paths.
    free_slots: Mutex<Vec<FreeSlot>>,
    /// Collected bags (entries already destroyed, `Vec` capacity retained),
    /// recycled by the seal paths so steady-state reclamation performs no
    /// heap allocation.  Locked once per seal / per collected bag — the same
    /// ~1-in-`BAG_SEAL_THRESHOLD` cadence as the sealed-stack CAS.  The
    /// `Box` is the recycled artifact itself (bags live on the Treiber stack
    /// via `Box::into_raw`), so `clippy::vec_box` does not apply.
    #[allow(clippy::vec_box)]
    bag_pool: Mutex<Vec<Box<SealedBag>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: PaddedEpoch(AtomicUsize::new(0)),
        slots: AtomicPtr::new(ptr::null_mut()),
        sealed: AtomicPtr::new(ptr::null_mut()),
        free_slots: Mutex::new(Vec::new()),
        bag_pool: Mutex::new(Vec::new()),
    })
}

/// Claim a slot for the current thread: reuse one from the free list when
/// possible, otherwise allocate and publish a new one.
fn acquire_slot() -> &'static Slot {
    let reg = registry();
    if let Some(FreeSlot(slot)) = reg.free_slots.lock().unwrap().pop() {
        // SAFETY: free-listed slots are leaked allocations; they stay linked
        // in the registry forever and are inactive (state == 0) while free.
        return unsafe { &*slot };
    }
    let slot: &'static Slot = Box::leak(Box::new(Slot {
        state: AtomicUsize::new(0),
        next: AtomicPtr::new(ptr::null_mut()),
    }));
    let mut head = reg.slots.load(Ordering::Relaxed);
    loop {
        slot.next.store(head, Ordering::Relaxed);
        match reg.slots.compare_exchange_weak(
            head,
            slot as *const Slot as *mut Slot,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => return slot,
            Err(current) => head = current,
        }
    }
}

/// A deferred destructor: a raw pointer plus the monomorphized drop glue.
#[derive(Clone, Copy)]
struct Deferred {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: garbage may be freed by a different thread than the one that
// retired it (via the sealed-bag stack); the `defer_destroy` contract makes
// the caller responsible for this being sound, exactly as in the real crate.
unsafe impl Send for Deferred {}

impl Deferred {
    fn new<T>(ptr: *const T) -> Self {
        // SAFETY: contract — `ptr` came from `Box::into_raw::<T>` and is
        // dropped exactly once.
        unsafe fn drop_box<T>(ptr: *mut ()) {
            // SAFETY: per the contract above.
            drop(unsafe { Box::from_raw(ptr as *mut T) });
        }
        Self {
            ptr: ptr as *mut (),
            drop_fn: drop_box::<T>,
        }
    }

    fn with(ptr: *mut (), drop_fn: unsafe fn(*mut ())) -> Self {
        Self { ptr, drop_fn }
    }

    fn call(self) {
        // SAFETY: the retirement contract (`defer_destroy` / `defer_with`)
        // guarantees the pointer is uniquely owned by the reclamation
        // machinery, and `call` runs at most once per retirement.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// Seal the contents of `local` (swapping in a recycled, empty `Vec` so the
/// caller's bag keeps serving pushes without reallocating) and publish them
/// on the sealed-bag stack, tagged with the current global epoch.
fn seal_local(local: &mut Vec<Deferred>) {
    if local.is_empty() {
        return;
    }
    let reg = registry();
    // Fence (2): order the retirement stores before the tag read, so the tag
    // cannot predate the epoch during which the garbage was last reachable.
    fence(Ordering::SeqCst);
    let epoch = reg.epoch.0.load(Ordering::Relaxed);
    let bag = match reg.bag_pool.lock().unwrap().pop() {
        Some(mut bag) => {
            bag.epoch = epoch;
            // The recycled bag's garbage Vec is empty with capacity retained;
            // hand that capacity to the caller's local bag.
            std::mem::swap(&mut bag.garbage, local);
            bag.next.store(ptr::null_mut(), Ordering::Relaxed);
            Box::into_raw(bag)
        }
        None => Box::into_raw(Box::new(SealedBag {
            epoch,
            garbage: std::mem::take(local),
            next: AtomicPtr::new(ptr::null_mut()),
        })),
    };
    push_sealed(reg, bag);
}

fn push_sealed(reg: &Registry, bag: *mut SealedBag) {
    let mut head = reg.sealed.load(Ordering::Relaxed);
    loop {
        // SAFETY: `bag` is exclusively owned until the CAS publishes it.
        unsafe { (*bag).next.store(head, Ordering::Relaxed) };
        match reg
            .sealed
            .compare_exchange_weak(head, bag, Ordering::Release, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(current) => head = current,
        }
    }
}

/// Try to advance the global epoch by one step; returns the epoch observed
/// afterwards.  Advancing from `e` to `e + 1` is allowed only when every
/// active participant has observed `e`.
fn try_advance(reg: &Registry) -> usize {
    let epoch = reg.epoch.0.load(Ordering::Relaxed);
    // Pairs with fence (1) in `pin`: any thread that pins after this scan
    // reads it as missing will load the *new* epoch (or be observed active).
    fence(Ordering::SeqCst);
    let mut cursor = reg.slots.load(Ordering::Acquire);
    while !cursor.is_null() {
        // SAFETY: registry nodes are leaked, so the pointer is always valid.
        let slot = unsafe { &*cursor };
        let state = slot.state.load(Ordering::Relaxed);
        if state & ACTIVE == ACTIVE && state >> 1 != epoch {
            // A pinned thread has not observed the current epoch yet.
            return epoch;
        }
        cursor = slot.next.load(Ordering::Acquire);
    }
    match reg
        .epoch
        .0
        .compare_exchange(epoch, epoch + 1, Ordering::Release, Ordering::Relaxed)
    {
        Ok(_) => epoch + 1,
        Err(current) => current,
    }
}

/// Detach the whole sealed-bag stack, free every bag at least two epochs
/// old, and re-push the rest.
fn collect_sealed(reg: &Registry, global_epoch: usize) {
    let mut cursor = reg.sealed.swap(ptr::null_mut(), Ordering::Acquire);
    while !cursor.is_null() {
        // SAFETY: the swap gave us exclusive ownership of the detached list.
        let next = unsafe { (*cursor).next.load(Ordering::Relaxed) };
        // SAFETY: same exclusive ownership of the detached list.
        let expired = unsafe { (*cursor).epoch + 2 <= global_epoch };
        if expired {
            // SAFETY: sealed bags are `Box`-allocated and, detached, ours alone.
            let mut bag = unsafe { Box::from_raw(cursor) };
            for deferred in bag.garbage.drain(..) {
                deferred.call();
            }
            // Park the emptied allocation (box + Vec capacity) for the next
            // seal instead of freeing it.
            let mut pool = reg.bag_pool.lock().unwrap();
            if pool.len() < BAG_POOL_CAP {
                pool.push(bag);
            }
        } else {
            push_sealed(reg, cursor);
        }
        cursor = next;
    }
}

struct Local {
    slot: &'static Slot,
    pin_depth: usize,
    pins: usize,
    bag: Vec<Deferred>,
}

impl Local {
    fn new() -> Self {
        Self {
            slot: acquire_slot(),
            pin_depth: 0,
            pins: 0,
            bag: Vec::new(),
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Publish remaining garbage, go inactive, and donate the slot to the
        // next thread that registers.
        self.slot.state.store(0, Ordering::Release);
        seal_local(&mut self.bag);
        registry()
            .free_slots
            .lock()
            .unwrap()
            .push(FreeSlot(self.slot as *const Slot));
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            Some(f(l.get_or_insert_with(Local::new)))
        })
        .unwrap_or(None)
}

/// Pin the current thread, returning a guard that keeps any pointer loaded
/// while it is live safe from reclamation.
///
/// Lock-free: publishes the thread's slot state and issues one `SeqCst`
/// fence; no global mutex is acquired (the registry mutex is touched only
/// the first time a thread ever pins, to claim a slot).
pub fn pin() -> Guard {
    let run_collection = with_local(|local| {
        local.pin_depth += 1;
        if local.pin_depth == 1 {
            let reg = registry();
            let mut epoch = reg.epoch.0.load(Ordering::Relaxed);
            loop {
                local
                    .slot
                    .state
                    .store((epoch << 1) | ACTIVE, Ordering::Relaxed);
                // Fence (1): publish the pinned state before loading the
                // epoch again (and before any protected pointer loads that
                // follow the pin).
                fence(Ordering::SeqCst);
                let current = reg.epoch.0.load(Ordering::Relaxed);
                if current == epoch {
                    break;
                }
                epoch = current;
            }
            local.pins += 1;
            if local.pins % PINS_BETWEEN_COLLECT == 0 {
                // Seal while the thread-local is borrowed (sealing runs no
                // destructors), but run the collection cycle *after* the
                // borrow is released: freeing a sealed bag executes
                // arbitrary drop glue, and glue for reference-counted
                // structures (the skip hash's node arena) may itself pin
                // and defer further retirements.  Re-entering the
                // thread-local here would panic the `RefCell`.
                seal_local(&mut local.bag);
                return true;
            }
        }
        false
    })
    .unwrap_or(false);
    if run_collection {
        let reg = registry();
        let global_epoch = try_advance(reg);
        collect_sealed(reg, global_epoch);
    }
    Guard { active: true }
}

/// Return a guard that performs no pinning.
///
/// # Safety
///
/// The caller must guarantee exclusive access to the data structure (the same
/// contract as in the real crate, where this is used in destructors).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { active: false };
    &UNPROTECTED
}

/// A batch of retirements accumulated by one owner (e.g. one STM
/// transaction) and handed to the collector in a single
/// [`Guard::flush_batch`] call.
///
/// Shim extension: the real crate exposes per-call `defer_destroy` only;
/// batching lets a transaction that retires `k` values pay one thread-local
/// access per commit instead of `k`.
#[derive(Default)]
pub struct Bag {
    entries: Vec<Deferred>,
}

impl std::fmt::Debug for Bag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bag")
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl Bag {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been deferred into the batch.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of pending retirements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Schedule `ptr`'s pointee for destruction once the batch is flushed
    /// through a guard and no pinned thread can still reference it.
    ///
    /// # Safety
    ///
    /// Same contract as [`Guard::defer_destroy`]; additionally the batch
    /// must be flushed via [`Guard::flush_batch`] while the thread that made
    /// the pointee unreachable is still pinned (or through an
    /// [`unprotected`] guard with exclusive access).
    pub unsafe fn defer_destroy<T>(&mut self, ptr: Shared<'_, T>) {
        if !ptr.is_null() {
            self.entries.push(Deferred::new(ptr.as_raw()));
        }
    }

    /// Schedule `drop_fn(ptr)` to run once the batch is flushed through a
    /// guard and no pinned thread can still reference the pointee.
    ///
    /// Shim extension for callers whose allocations do not come from
    /// [`Owned::new`] (e.g. a custom slab): the caller supplies the matching
    /// reclamation glue instead of the default `Box` drop.
    ///
    /// # Safety
    ///
    /// Same flushing contract as [`Bag::defer_destroy`]; additionally
    /// `drop_fn(ptr)` must be safe to call exactly once from any thread after
    /// the pointee becomes unreachable.
    pub unsafe fn defer_with(&mut self, ptr: *mut (), drop_fn: unsafe fn(*mut ())) {
        if !ptr.is_null() {
            self.entries.push(Deferred::with(ptr, drop_fn));
        }
    }
}

impl Drop for Bag {
    fn drop(&mut self) {
        // Entries that were never flushed are leaked deliberately: freeing
        // here could race a still-pinned reader.  The STM layer flushes on
        // every commit/rollback path, so this only triggers if a panic
        // unwinds straight through a transaction.
        debug_assert!(
            self.entries.is_empty() || std::thread::panicking(),
            "Bag dropped with unflushed retirements"
        );
    }
}

/// Witness that the current thread is pinned.
pub struct Guard {
    active: bool,
}

impl Guard {
    /// Schedule `ptr`'s pointee for destruction once no pinned thread can
    /// still reference it.
    ///
    /// Lock-free: pushes into the thread-local bag; every
    /// `BAG_SEAL_THRESHOLD`-th entry seals the bag onto the global stack
    /// with a CAS.
    ///
    /// # Safety
    ///
    /// `ptr` must have been created by [`Owned::new`] (i.e. be a unique,
    /// `Box`-allocated pointer) and be unreachable to any thread that is not
    /// currently pinned.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        if ptr.is_null() {
            return;
        }
        if !self.active {
            // SAFETY: unprotected guard — the caller asserts exclusive access
            // to a `Box`-allocated pointee (the `defer_destroy` contract).
            unsafe { drop(Box::from_raw(ptr.as_raw() as *mut T)) };
            return;
        }
        let deferred = Deferred::new(ptr.as_raw());
        // If thread-local storage is already torn down, leak rather than risk
        // freeing under a still-pinned reader.
        let _ = with_local(|local| {
            local.bag.push(deferred);
            if local.bag.len() >= BAG_SEAL_THRESHOLD {
                seal_local(&mut local.bag);
            }
        });
    }

    /// Schedule `drop_fn(ptr)` for once no pinned thread can reference the
    /// pointee (shim extension; the custom-glue sibling of
    /// [`Guard::defer_destroy`], see [`Bag::defer_with`]).
    ///
    /// # Safety
    ///
    /// `ptr` must be unreachable to any thread that is not currently pinned,
    /// and `drop_fn(ptr)` must be safe to call exactly once from any thread.
    /// Through an [`unprotected`] guard the glue runs immediately (the caller
    /// asserts exclusive access).
    pub unsafe fn defer_with(&self, ptr: *mut (), drop_fn: unsafe fn(*mut ())) {
        if ptr.is_null() {
            return;
        }
        if !self.active {
            // SAFETY: unprotected guard — the caller asserts exclusive access,
            // and `drop_fn` is safe to call once (the `defer_with` contract).
            unsafe { drop_fn(ptr) };
            return;
        }
        let deferred = Deferred::with(ptr, drop_fn);
        let _ = with_local(|local| {
            local.bag.push(deferred);
            if local.bag.len() >= BAG_SEAL_THRESHOLD {
                seal_local(&mut local.bag);
            }
        });
    }

    /// Move every retirement in `bag` into the thread-local bag in one
    /// thread-local access (shim extension; see [`Bag`]).  The batch keeps
    /// its capacity, so a pooled bag serves any number of flushes without
    /// reallocating.
    ///
    /// Through an [`unprotected`] guard the batch is freed immediately
    /// (caller asserts exclusive access, as for `defer_destroy`).
    pub fn flush_batch(&self, bag: &mut Bag) {
        if bag.entries.is_empty() {
            return;
        }
        if !self.active {
            for deferred in bag.entries.drain(..) {
                deferred.call();
            }
            return;
        }
        // If thread-local storage is already torn down, leak (same policy as
        // `defer_destroy`).  `Vec::append` leaves `bag` empty with its
        // capacity intact for the next transaction.
        let _ = with_local(|local| {
            local.bag.append(&mut bag.entries);
            if local.bag.len() >= BAG_SEAL_THRESHOLD {
                seal_local(&mut local.bag);
            }
        });
        bag.entries.clear();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.active {
            with_local(|local| {
                local.pin_depth -= 1;
                if local.pin_depth == 0 {
                    local.slot.state.store(0, Ordering::Release);
                }
            });
        }
    }
}

/// An owned, heap-allocated value, convertible into a [`Shared`] pointer.
pub struct Owned<T> {
    inner: Box<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            inner: Box::new(value),
        }
    }

    /// Consume the handle, returning the boxed value.
    pub fn into_box(self) -> Box<T> {
        self.inner
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A pointer to shared data, valid while the guard it was loaded under lives.
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: std::ptr::null(),
            _marker: PhantomData,
        }
    }

    /// True if this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected by a pinned guard (or by
    /// exclusive access).
    pub unsafe fn deref(&self) -> &'g T {
        // SAFETY: non-null and protected, per this method's contract.
        unsafe { &*self.ptr }
    }

    /// Reclaim ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee, which must have
    /// been allocated by [`Owned::new`].
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            // SAFETY: exclusively owned and `Owned::new`-allocated, per this
            // method's contract.
            inner: unsafe { Box::from_raw(self.ptr as *mut T) },
        }
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(ptr: *const T) -> Self {
        Self {
            ptr,
            _marker: PhantomData,
        }
    }
}

/// Types that carry a pointer which can be installed into an [`Atomic`].
pub trait Pointer<T> {
    /// Consume the handle, returning the raw pointer.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.inner)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr as *mut T
    }
}

/// An atomic pointer to epoch-managed data.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: `Atomic<T>` is a shared handle to a `T` reachable from several
// threads at once, so both impls require `T: Send + Sync` — the same bounds
// the real crate uses.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Load the current pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Atomically replace the pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Unconditionally store a new pointer.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn swap_and_defer_eventually_frees() {
        let a = Atomic::new(Counted);
        for _ in 0..1_000 {
            let g = pin();
            let old = a.swap(Owned::new(Counted), Ordering::SeqCst, &g);
            // SAFETY: `old` was just unlinked and `g` is pinned.
            unsafe { g.defer_destroy(old) };
        }
        // Drive enough collection cycles that early garbage must be freed.
        for _ in 0..10 * PINS_BETWEEN_COLLECT {
            drop(pin());
        }
        assert!(DROPS.load(Ordering::SeqCst) > 0, "garbage was never freed");
        // Clean up the final value.
        // SAFETY: the test is single-threaded here; exclusive access.
        unsafe {
            let g = unprotected();
            let last = a.load(Ordering::SeqCst, g);
            drop(last.into_owned());
        }
    }

    #[test]
    fn unprotected_defer_drops_immediately() {
        let a = Atomic::new(7u64);
        // SAFETY: single-threaded test — exclusive access throughout.
        unsafe {
            let g = unprotected();
            let old = a.swap(Owned::new(8u64), Ordering::SeqCst, g);
            g.defer_destroy(old);
            let last = a.load(Ordering::SeqCst, g);
            assert_eq!(*last.deref(), 8);
            drop(last.into_owned());
        }
    }

    #[test]
    fn nested_pins_are_allowed() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
    }

    #[test]
    fn drop_glue_may_pin_and_defer_recursively() {
        // Reference-counted structures retire a neighbour's block from the
        // drop glue of their own: the glue pins and defers while a collection
        // cycle is executing it.  This must not dead-borrow the thread-local
        // or lose the nested retirement.
        static INNER_DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Inner;
        impl Drop for Inner {
            fn drop(&mut self) {
                INNER_DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        struct Outer(*mut Inner);
        // SAFETY: the raw pointer is exclusively owned by its `Outer`.
        unsafe impl Send for Outer {}
        impl Drop for Outer {
            fn drop(&mut self) {
                // Re-enter the collector from inside a deferred destructor.
                let g = pin();
                // SAFETY: `self.0` is exclusively owned and `g` is pinned.
                unsafe { g.defer_destroy(Shared::from(self.0 as *const Inner)) };
            }
        }
        let retired = 300;
        for _ in 0..retired {
            let g = pin();
            let outer = Box::into_raw(Box::new(Outer(Box::into_raw(Box::new(Inner)))));
            // SAFETY: `outer` was never shared and `g` is pinned.
            unsafe { g.defer_destroy(Shared::from(outer as *const Outer)) };
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while INNER_DROPS.load(Ordering::SeqCst) < retired && std::time::Instant::now() < deadline {
            drop(pin());
        }
        assert_eq!(
            INNER_DROPS.load(Ordering::SeqCst),
            retired,
            "nested retirements from drop glue must all be reclaimed"
        );
    }

    #[test]
    fn flush_batch_retires_every_entry() {
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cells: Vec<Atomic<Tracked>> = (0..8)
            .map(|_| Atomic::new(Tracked(Arc::clone(&drops))))
            .collect();
        let retired = 200 * cells.len();
        for _ in 0..200 {
            let g = pin();
            let mut bag = Bag::new();
            for cell in &cells {
                let old = cell.swap(
                    Owned::new(Tracked(Arc::clone(&drops))),
                    Ordering::AcqRel,
                    &g,
                );
                // SAFETY: `old` was just unlinked and `g` is pinned.
                unsafe { bag.defer_destroy(old) };
            }
            assert_eq!(bag.len(), cells.len());
            g.flush_batch(&mut bag);
            assert!(bag.is_empty());
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < retired && std::time::Instant::now() < deadline {
            drop(pin());
        }
        assert_eq!(drops.load(Ordering::SeqCst), retired);
        // SAFETY: all worker loops are done; exclusive access for teardown.
        unsafe {
            let g = unprotected();
            for cell in &cells {
                drop(cell.load(Ordering::Relaxed, g).into_owned());
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), retired + cells.len());
    }

    #[test]
    fn flush_batch_through_unprotected_frees_immediately() {
        let a = Atomic::new(1u64);
        // SAFETY: single-threaded test — exclusive access throughout.
        unsafe {
            let g = unprotected();
            let mut bag = Bag::new();
            let old = a.swap(Owned::new(2u64), Ordering::AcqRel, g);
            bag.defer_destroy(old);
            g.flush_batch(&mut bag);
            assert!(bag.is_empty());
            drop(a.load(Ordering::Relaxed, g).into_owned());
        }
    }

    #[test]
    fn exited_threads_do_not_block_epoch_advance() {
        // A thread that pins, defers garbage, and exits must not stop the
        // remaining threads from reclaiming.
        let drops = Arc::new(AtomicUsize::new(0));
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let retired_per_thread = 100;
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    let a = Atomic::new(Tracked(Arc::clone(&drops)));
                    for _ in 0..retired_per_thread {
                        let g = pin();
                        let old = a.swap(
                            Owned::new(Tracked(Arc::clone(&drops))),
                            Ordering::AcqRel,
                            &g,
                        );
                        // SAFETY: `old` was just unlinked and `g` is pinned.
                        unsafe { g.defer_destroy(old) };
                    }
                    // SAFETY: this thread owns `a`; exclusive teardown.
                    unsafe {
                        let g = unprotected();
                        drop(a.load(Ordering::Relaxed, g).into_owned());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = threads * (retired_per_thread + 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while drops.load(Ordering::SeqCst) < expected && std::time::Instant::now() < deadline {
            drop(pin());
        }
        assert_eq!(drops.load(Ordering::SeqCst), expected);
    }
}
