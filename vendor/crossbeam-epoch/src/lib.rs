//! Minimal, API-compatible stand-in for the subset of `crossbeam-epoch` used
//! by this workspace.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors this shim instead of the real crate.  It implements a genuine (if
//! simple) epoch-based reclamation scheme:
//!
//! * every thread registers a *slot* holding its currently pinned epoch (or
//!   "inactive");
//! * [`Guard::defer_destroy`] parks garbage in a thread-local bag tagged with
//!   the global epoch at retirement;
//! * the global epoch only advances when every active thread has observed the
//!   current epoch, and garbage retired in epoch `e` is freed once the global
//!   epoch reaches `e + 2` — at which point no pinned thread can still hold a
//!   reference to it.
//!
//! Compared to the real crate this shim trades throughput for simplicity: the
//! participant registry is a mutex-protected vector (scanned only during
//! occasional collection cycles), and all atomics use `SeqCst`.  The public
//! surface (`Atomic`, `Owned`, `Shared`, `Guard`, [`pin`], [`unprotected`])
//! matches `crossbeam-epoch` 0.9 closely enough that swapping the real crate
//! back in is a one-line manifest change.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const ACTIVE: usize = 1;

/// Number of pins between collection attempts on a thread.
const PINS_BETWEEN_COLLECT: usize = 64;

/// One registered thread: `(epoch << 1) | active` when pinned, `0` otherwise.
struct Slot {
    state: AtomicUsize,
}

struct Registry {
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Garbage abandoned by exited threads, freed by whoever collects next.
    orphans: Mutex<Vec<(usize, Deferred)>>,
    epoch: AtomicUsize,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        slots: Mutex::new(Vec::new()),
        orphans: Mutex::new(Vec::new()),
        epoch: AtomicUsize::new(0),
    })
}

/// A deferred destructor: a raw pointer plus the monomorphized drop glue.
#[derive(Clone, Copy)]
struct Deferred {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// Garbage may be freed by a different thread than the one that retired it
// (via the orphan list).  The `defer_destroy` contract makes the caller
// responsible for this being sound, exactly as in the real crate.
unsafe impl Send for Deferred {}

impl Deferred {
    fn new<T>(ptr: *const T) -> Self {
        unsafe fn drop_box<T>(ptr: *mut ()) {
            drop(unsafe { Box::from_raw(ptr as *mut T) });
        }
        Self {
            ptr: ptr as *mut (),
            drop_fn: drop_box::<T>,
        }
    }

    fn call(self) {
        // SAFETY: constructed from a uniquely owned `Box`-allocated pointer,
        // and `call` runs at most once per retirement.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// Free every bag entry retired at least two epochs before `global_epoch`.
fn free_expired(bag: &mut Vec<(usize, Deferred)>, global_epoch: usize) {
    let mut i = 0;
    while i < bag.len() {
        if bag[i].0 + 2 <= global_epoch {
            let (_, deferred) = bag.swap_remove(i);
            deferred.call();
        } else {
            i += 1;
        }
    }
}

struct Local {
    slot: Arc<Slot>,
    pin_depth: usize,
    pins: usize,
    bag: Vec<(usize, Deferred)>,
}

impl Local {
    fn new() -> Self {
        let slot = Arc::new(Slot {
            state: AtomicUsize::new(0),
        });
        registry().slots.lock().unwrap().push(Arc::clone(&slot));
        Self {
            slot,
            pin_depth: 0,
            pins: 0,
            bag: Vec::new(),
        }
    }

    /// Try to advance the global epoch, then free sufficiently old garbage.
    fn collect(&mut self) {
        let reg = registry();
        if let Ok(slots) = reg.slots.try_lock() {
            let e = reg.epoch.load(Ordering::SeqCst);
            let all_current = slots.iter().all(|s| {
                let st = s.state.load(Ordering::SeqCst);
                st & ACTIVE == 0 || st >> 1 == e
            });
            if all_current {
                let _ = reg
                    .epoch
                    .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
        let ge = reg.epoch.load(Ordering::SeqCst);
        free_expired(&mut self.bag, ge);
        if let Ok(mut orphans) = reg.orphans.try_lock() {
            free_expired(&mut orphans, ge);
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        // Hand remaining garbage to the global orphan list and go inactive.
        let reg = registry();
        self.slot.state.store(0, Ordering::SeqCst);
        if !self.bag.is_empty() {
            reg.orphans.lock().unwrap().append(&mut self.bag);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL
        .try_with(|l| {
            let mut l = l.borrow_mut();
            Some(f(l.get_or_insert_with(Local::new)))
        })
        .unwrap_or(None)
}

/// Pin the current thread, returning a guard that keeps any pointer loaded
/// while it is live safe from reclamation.
pub fn pin() -> Guard {
    with_local(|local| {
        local.pin_depth += 1;
        if local.pin_depth == 1 {
            let reg = registry();
            loop {
                let e = reg.epoch.load(Ordering::SeqCst);
                local.slot.state.store((e << 1) | ACTIVE, Ordering::SeqCst);
                if reg.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
            local.pins += 1;
            if local.pins % PINS_BETWEEN_COLLECT == 0 {
                local.collect();
            }
        }
    });
    Guard { active: true }
}

/// Return a guard that performs no pinning.
///
/// # Safety
///
/// The caller must guarantee exclusive access to the data structure (the same
/// contract as in the real crate, where this is used in destructors).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { active: false };
    &UNPROTECTED
}

/// Witness that the current thread is pinned.
pub struct Guard {
    active: bool,
}

impl Guard {
    /// Schedule `ptr`'s pointee for destruction once no pinned thread can
    /// still reference it.
    ///
    /// # Safety
    ///
    /// `ptr` must have been created by [`Owned::new`] (i.e. be a unique,
    /// `Box`-allocated pointer) and be unreachable to any thread that is not
    /// currently pinned.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        if ptr.is_null() {
            return;
        }
        if !self.active {
            // Unprotected guard: caller asserts exclusive access.
            unsafe { drop(Box::from_raw(ptr.as_raw() as *mut T)) };
            return;
        }
        let epoch = registry().epoch.load(Ordering::SeqCst);
        let deferred = Deferred::new(ptr.as_raw());
        // If thread-local storage is already torn down, leak rather than risk
        // freeing under a still-pinned reader.
        let _ = with_local(|local| local.bag.push((epoch, deferred)));
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.active {
            with_local(|local| {
                local.pin_depth -= 1;
                if local.pin_depth == 0 {
                    local.slot.state.store(0, Ordering::SeqCst);
                }
            });
        }
    }
}

/// An owned, heap-allocated value, convertible into a [`Shared`] pointer.
pub struct Owned<T> {
    inner: Box<T>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            inner: Box::new(value),
        }
    }

    /// Consume the handle, returning the boxed value.
    pub fn into_box(self) -> Box<T> {
        self.inner
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A pointer to shared data, valid while the guard it was loaded under lives.
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: std::ptr::null(),
            _marker: PhantomData,
        }
    }

    /// True if this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and protected by a pinned guard (or by
    /// exclusive access).
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*self.ptr }
    }

    /// Reclaim ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access to the pointee, which must have
    /// been allocated by [`Owned::new`].
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            inner: unsafe { Box::from_raw(self.ptr as *mut T) },
        }
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(ptr: *const T) -> Self {
        Self {
            ptr,
            _marker: PhantomData,
        }
    }
}

/// Types that carry a pointer which can be installed into an [`Atomic`].
pub trait Pointer<T> {
    /// Consume the handle, returning the raw pointer.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.inner)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr as *mut T
    }
}

/// An atomic pointer to epoch-managed data.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Load the current pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Atomically replace the pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }

    /// Unconditionally store a new pointer.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn swap_and_defer_eventually_frees() {
        let a = Atomic::new(Counted);
        for _ in 0..1_000 {
            let g = pin();
            let old = a.swap(Owned::new(Counted), Ordering::SeqCst, &g);
            unsafe { g.defer_destroy(old) };
        }
        // Drive enough collection cycles that early garbage must be freed.
        for _ in 0..10 * PINS_BETWEEN_COLLECT {
            drop(pin());
        }
        assert!(DROPS.load(Ordering::SeqCst) > 0, "garbage was never freed");
        // Clean up the final value.
        unsafe {
            let g = unprotected();
            let last = a.load(Ordering::SeqCst, g);
            drop(last.into_owned());
        }
    }

    #[test]
    fn unprotected_defer_drops_immediately() {
        let a = Atomic::new(7u64);
        unsafe {
            let g = unprotected();
            let old = a.swap(Owned::new(8u64), Ordering::SeqCst, g);
            g.defer_destroy(old);
            let last = a.load(Ordering::SeqCst, g);
            assert_eq!(*last.deref(), 8);
            drop(last.into_owned());
        }
    }

    #[test]
    fn nested_pins_are_allowed() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
    }
}
