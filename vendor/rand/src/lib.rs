//! Minimal, API-compatible stand-in for the subset of `rand` 0.8 used by this
//! workspace, vendored because the build environment has no access to
//! crates.io.
//!
//! Provides [`SmallRng`](rngs::SmallRng) (xorshift64* — fast, decent quality,
//! deterministic from a seed), [`thread_rng`], the [`Rng`]/[`SeedableRng`]
//! traits, and [`distributions::Uniform`].  Statistical quality is adequate
//! for benchmark key sampling and randomized tests; do **not** use for
//! anything security-sensitive.

use std::cell::Cell;
use std::ops::Range;

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next pseudo-random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value space by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that [`Rng::gen_range`] and [`distributions::Uniform`] can
/// sample from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Width of `low..high` as a `u64` (caller guarantees `low < high`).
    fn range_width(low: Self, high: Self) -> u64;
    /// `low + offset`, where `offset < range_width(low, high)`.
    fn add_offset(low: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn range_width(low: Self, high: Self) -> u64 {
                (high as i128 - low as i128) as u64
            }
            fn add_offset(low: Self, offset: u64) -> Self {
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Map a random word to `[0, width)` without modulo bias worth caring about
/// at benchmark scales (Lemire's multiply-shift reduction).
fn reduce(word: u64, width: u64) -> u64 {
    ((word as u128 * width as u128) >> 64) as u64
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from its full value space (for `bool`, a fair
    /// coin flip).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        let width = T::range_width(range.start, range.end);
        T::add_offset(range.start, reduce(self.next_u64(), width))
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: used to expand seeds and to seed [`thread_rng`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::*;

    /// A small, fast, deterministic RNG (xorshift64*), mirroring
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand through SplitMix64 so nearby seeds diverge, and keep the
            // xorshift state nonzero.
            let mut s = state;
            let expanded = splitmix64(&mut s);
            Self {
                state: if expanded == 0 { 0x9E37_79B9 } else { expanded },
            }
        }
    }

    /// Handle to a per-thread RNG; see [`super::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) ());

    thread_local! {
        pub(crate) static THREAD_RNG_STATE: Cell<u64> = Cell::new(seed_for_thread());
    }

    fn seed_for_thread() -> u64 {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0xC0FF_EE00);
        let mut s = COUNTER.fetch_add(1, Ordering::Relaxed);
        let expanded = splitmix64(&mut s);
        if expanded == 0 {
            0x9E37_79B9
        } else {
            expanded
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG_STATE.with(|state| {
                let mut x = state.get();
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                state.set(x);
                x.wrapping_mul(0x2545_F491_4F6C_DD1D)
            })
        }
    }
}

/// A per-thread RNG, seeded once per thread.  Unlike the real crate the seed
/// is deterministic per process (derived from a thread-registration counter),
/// which is a feature for reproducible benchmarks.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(())
}

/// Uniform distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::*;

    /// Types that produce values of `T` when sampled.
    pub trait Distribution<T> {
        /// Draw one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open integer range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        width: u64,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Distribution over `low..high`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "cannot sample empty range");
            Self {
                low,
                width: T::range_width(low, high),
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::add_offset(self.low, reduce(rng.next_u64(), self.width))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn uniform_matches_gen_range_bounds() {
        let dist = Uniform::new(100u64, 200);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = dist.sample(&mut rng);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn bool_flips_both_ways() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..1_000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn thread_rng_works_and_differs_across_threads() {
        let mut r = thread_rng();
        let a = r.next_u64();
        let b = std::thread::spawn(|| thread_rng().next_u64())
            .join()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
