//! Minimal, API-compatible stand-in for the subset of `criterion` used by
//! this workspace, vendored because the build environment has no access to
//! crates.io.
//!
//! Benchmarks written against the real crate compile and run unchanged: each
//! [`Bencher::iter`] call warms up for the configured warm-up time, measures
//! for the configured measurement time, and prints mean ns/iter with a
//! min..max spread, the median, and the 95th percentile (nearest-rank) over
//! the sample batches — enough for CI jobs to record a comparable baseline.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line to it
//! (`{"id": ..., "mean_ns": ..., "median_ns": ..., "p95_ns": ...}`), which is
//! what the CI regression gate (`skiphash_bench`'s `bench_gate` binary)
//! consumes as its stored baseline artifact.
//!
//! There is no statistical outlier analysis, HTML report, or in-process
//! baseline comparison — swap the real crate back in (one manifest line) for
//! those.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { id: name }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, for compatibility with
    /// `criterion_main!`-generated entry points.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples to take.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// How long to run the benchmark before measuring.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// How long to measure for (split across the samples).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() {
            id.id
        } else {
            format!("{}/{}", self.name, id.id)
        };

        // Warm-up: run (and calibrate a per-sample iteration count).
        let mut bencher = Bencher {
            mode: Mode::Calibrate {
                deadline: Instant::now() + self.warm_up_time,
            },
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_second = if bencher.elapsed.as_nanos() == 0 {
            1_000_000
        } else {
            (bencher.iters_done as u128 * 1_000_000_000 / bencher.elapsed.as_nanos()).max(1)
        };
        let per_sample = (per_second * self.measurement_time.as_nanos()
            / 1_000_000_000
            / self.sample_size as u128)
            .clamp(1, u64::MAX as u128) as u64;

        // Measurement samples.
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                mode: Mode::Fixed { iters: per_sample },
                iters_done: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters_done.max(1) as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let mut sorted = samples_ns;
        sorted.sort_by(f64::total_cmp);
        let median = percentile(&sorted, 50.0);
        let p95 = percentile(&sorted, 95.0);
        println!(
            "{label:<55} {mean:>12.1} ns/iter  [{min:.1} .. {max:.1}]  \
             median {median:.1}  p95 {p95:.1}"
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                append_json_record(&path, &label, mean, median, p95);
            }
        }
        self
    }

    /// Finish the group (prints nothing; reports are per-benchmark).
    pub fn finish(self) {}
}

/// Append one benchmark result as a JSON line to `path` (best effort: a CI
/// artifact writer must never fail the benchmark run itself).
fn append_json_record(path: &str, label: &str, mean: f64, median: f64, p95: f64) {
    use std::io::Write;
    let escaped: String = label.chars().flat_map(char::escape_default).collect();
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            file,
            "{{\"id\":\"{escaped}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\"p95_ns\":{p95:.1}}}"
        );
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

enum Mode {
    /// Run until the deadline, counting iterations (warm-up / calibration).
    Calibrate { deadline: Instant },
    /// Run exactly `iters` iterations (one measurement sample).
    Fixed { iters: u64 },
}

/// Hands the benchmark body to the measurement loop.
pub struct Bencher {
    mode: Mode,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `body` repeatedly; its return value is passed through
    /// [`black_box`] so the optimizer cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            Mode::Calibrate { deadline } => {
                let start = Instant::now();
                loop {
                    black_box(body());
                    self.iters_done += 1;
                    if Instant::now() >= deadline {
                        break;
                    }
                }
                self.elapsed += start.elapsed();
            }
            Mode::Fixed { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(body());
                }
                self.elapsed += start.elapsed();
                self.iters_done += iters;
            }
        }
    }
}

/// Collect benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0, "benchmark body never executed");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("a", 7).id, "a/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 50.0), 5.0);
        assert_eq!(percentile(&sorted, 95.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 10.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[42.0], 50.0), 42.0);
        assert_eq!(percentile(&[42.0], 95.0), 42.0);
    }
}
