//! Minimal, API-compatible stand-in for the subset of `crossbeam-utils` used
//! by this workspace ([`Backoff`] and [`CachePadded`]), vendored because the
//! build environment has no access to crates.io.

use std::ops::{Deref, DerefMut};

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops, mirroring `crossbeam_utils::Backoff`.
#[derive(Debug, Default)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

impl Backoff {
    /// A fresh backoff starting at the shortest spin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to the shortest spin.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Spin for a short, exponentially growing number of iterations.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..(1u32 << step) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spin while the wait is expected to be short, then yield the thread.
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..(1u32 << step) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// True once backing off further would not help (callers should park or
    /// yield instead).
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

/// Pads and aligns a value to 128 bytes to avoid false sharing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_completes_after_enough_snoozes() {
        let b = Backoff::new();
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn cache_padded_is_aligned() {
        let padded = CachePadded::new(1u8);
        assert_eq!(std::mem::align_of_val(&padded), 128);
        assert_eq!(*padded, 1);
        assert_eq!(padded.into_inner(), 1);
    }
}
